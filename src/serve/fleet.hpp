// serve::Fleet — N BatchServer replicas behind a sharded queue, with
// admission control and per-tenant SLO accounting. The scale-out of the
// single-server serving layer: one replica is the PR 5 server unchanged;
// the fleet adds the pieces one server cannot provide.
//
//  * Replicas. Each worker wraps its own BatchServer (its own TRN Pareto
//    ladder, MissRateWatchdog, fault stream, jitter stream) over its own
//    latency curves — replicas may model heterogeneous devices (a fast
//    int8 replica next to slower ones), which is why admission reasons
//    per-replica instead of assuming a uniform fleet.
//  * Sharded queue + work stealing (serve/shard.hpp). Batch formation
//    contends only within a shard; a dry worker steals the most urgent
//    work from a seeded victim, so utilization survives skewed routing.
//  * Admission control. A request is shed at submit time — an explicit
//    Rejected completion, never a silent miss — when even the fastest TRN
//    on the least-loaded replica cannot meet its deadline, or when, under
//    backlog pressure, the submitting tenant is already consuming more
//    than its SLO class's weighted share of the backlog (so a bursty
//    tenant sheds its own overflow instead of starving everyone else).
//  * Per-tenant accounting. Submitted/shed/served/missed counters per
//    tenant, keyed by the tenant id and SLO class carried on every
//    Request and Completion.
//  * Replica failover (serve/health.hpp). Heartbeat deadlines driven off
//    the same step(now) clock detect a crashed or wedged replica; on Down
//    its shard is drained atomically and every orphan is re-queued in EDF
//    order onto the surviving shards, re-admission-checked against the
//    shrunk capacity (infeasible orphans become explicit Rejected
//    completions, never silent misses). Survivors' watchdogs get a
//    capacity-loss nudge — the fleet degrades accuracy, not deadlines.
//    Recovered replicas re-enter steal-only and earn routing + admission
//    back through a clean-batch warm-up ramp.
//
// Like everything in serve::, the fleet is clock-agnostic and
// deterministic: callers pass `now_ms`, every random choice draws from
// seeded streams, and the same (config, seed) reproduces the same
// completions bit-for-bit at any NETCUT_THREADS setting.
//
// Concurrency contract. submit(), step(), stats(), tenants(),
// next_free_after() and backlog() are safe to call from any thread.
// Admission/accounting state lives under mu_ (rank kFleet, below every
// other lock in the system); a stepper claims a worker under mu_ via its
// serving_ flag, then runs the replica's BatchServer::step with NO fleet
// lock held (the batch forward reaches the thread pool's completion wait,
// which must never happen under a serve lock), and re-acquires mu_ only
// for completion accounting. The admission decision is made against a
// backlog snapshot and the push lands after the lock is released — the
// conservation invariant (submitted == shed + served + in flight) holds
// at every interleaving because inflight is counted at admit time, and
// the model checker (tests/test_sched.cpp) drives submit against
// concurrent shedding and stepping to prove it.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "serve/health.hpp"
#include "serve/server.hpp"
#include "serve/shard.hpp"
#include "util/ranked_mutex.hpp"
#include "util/thread_annotations.hpp"

namespace netcut::serve {

/// One service-level objective class. Tenants reference a class by index
/// (Request::slo); the class carries the admission weight and the
/// reporting budget its tenants are held to.
struct SloClass {
  std::string name = "standard";
  /// Relative deadline the load generator attaches to this class's
  /// requests (absolute deadline = arrival + slack).
  double deadline_slack_ms = 10.0;
  /// Reporting bar: admitted requests of this class are expected to see
  /// p99 response within this budget (asserted by tests/bench, not
  /// enforced at runtime).
  double p99_budget_ms = 10.0;
  /// Weighted admission share. Under backlog pressure a tenant may hold
  /// at most weight / (sum of active tenants' weights) of the backlog.
  double weight = 1.0;
};

/// Spec for one worker replica.
struct FleetWorker {
  std::string name;                   // e.g. "replica0/xavier"
  std::vector<ServeOption> options;   // preferred first, fastest last
  ServeConfig serve;                  // per-replica seed/watchdog/faults
};

struct FleetConfig {
  std::vector<SloClass> classes = {SloClass{}};
  std::uint64_t seed = 9090;  // steal-victim streams (per-worker derived)
  /// Admission control master switch. Off = every request is admitted
  /// (the fleet degrades into sharded best-effort serving).
  bool admission = true;
  /// Fraction of a request's remaining slack kept as safety margin by the
  /// feasibility bound (admit only if best-case eta fits in (1 - headroom)
  /// of the slack). Without it the saturated steady state parks the
  /// backlog exactly on the feasibility boundary, where admitted requests
  /// finish at deadline +- jitter and half of them miss by a hair. In
  /// [0, 1).
  double admission_headroom = 0.10;
  /// Weighted tenant fairness engages when the total backlog reaches this
  /// many requests; below it any feasible request is admitted.
  std::size_t pressure_backlog = 64;
  /// Replica lifecycle knobs (heartbeat deadlines, probation, warm-up).
  HealthConfig health;
  /// Worker-scoped fault schedule (crash=/hang=/flaky= clauses); nullptr
  /// falls back to FaultModel::global() — the NETCUT_FAULTS environment
  /// schedule — like ServeConfig::faults.
  const hw::FaultModel* faults = nullptr;
};

/// Per-tenant counters (explicit outcomes only: submitted = shed + served
/// + still in flight; a shed request is never also a miss).
struct TenantCounters {
  std::uint32_t slo = 0;
  std::int64_t submitted = 0;
  std::int64_t shed = 0;       // rejected at admission
  std::int64_t served = 0;
  std::int64_t missed = 0;     // served but past deadline
};

struct FleetStats {
  std::int64_t submitted = 0;
  std::int64_t shed = 0;
  std::int64_t served = 0;
  std::int64_t missed = 0;
  std::int64_t steals = 0;  // successful shard-to-shard migrations
  // Failover accounting. drain_shed is a subset of shed: orphans the
  // shrunk fleet could no longer serve in budget (explicit rejections,
  // never silent misses), so submitted == shed + served + in flight holds
  // through replica death too.
  std::int64_t failovers = 0;  // Down declarations that triggered a drain
  std::int64_t requeued = 0;   // orphans re-queued onto surviving shards
  std::int64_t drain_shed = 0;  // orphans shed at re-admission
};

class Fleet {
 public:
  Fleet(std::vector<FleetWorker> workers, FleetConfig config);

  std::size_t workers() const { return servers_.size(); }
  const std::string& worker_name(std::size_t w) const { return names_[w]; }
  const BatchServer& worker(std::size_t w) const { return *servers_[w]; }
  const FleetConfig& config() const { return config_; }

  /// Lifecycle state of worker `w` (see serve/health.hpp). Safe from any
  /// thread; snapshots by value.
  ReplicaState worker_state(std::size_t w) const;
  ReplicaHealth worker_health(std::size_t w) const;

  /// Shard a request from `tenant` currently routes to (rendezvous hash
  /// over the Up replicas). Exposed for tests/demos that need to aim load
  /// at a particular replica.
  std::size_t route(std::uint32_t tenant) const { return queue_.route(tenant); }

  /// Admission control at time `now_ms`: either the request is enqueued on
  /// its shard (nullopt) or it is shed and the explicit Rejected
  /// completion is returned to the caller.
  std::optional<Completion> submit(const Request& r, double now_ms);

  /// Serve one batch: the lowest-index worker that is free at `now_ms`
  /// and has work (stealing if its own shard is dry) runs one
  /// BatchServer::step. Empty when no worker can start a batch at `now_ms`
  /// (all busy, or no work). Callers at the same `now_ms` loop until empty
  /// to let every free worker start.
  std::vector<Completion> step(double now_ms);

  /// Earliest time strictly after `now_ms` at which a busy worker frees
  /// up; +infinity when none is busy. The event-loop companion to step().
  double next_free_after(double now_ms) const;

  /// Total backlog across shards (admitted, not yet taken into a batch).
  std::size_t backlog() const { return queue_.total_size(); }

  /// No more submissions; shards keep serving (and stealing) until drained.
  void close();

  /// Snapshot of the fleet-wide counters (by value: guarded state must not
  /// leak out as a reference). steals is recomputed from the shard
  /// counters on every call.
  FleetStats stats() const;
  /// Deterministically ordered (by tenant id) snapshot of the per-tenant
  /// counters.
  std::map<std::uint32_t, TenantCounters> tenants() const {
    util::MutexLock lock(mu_);
    return tenants_;
  }

 private:
  bool feasible(const Request& r, double now_ms) const NETCUT_REQUIRES(mu_);
  bool over_fair_share(const Request& r) const NETCUT_REQUIRES(mu_);
  /// Health bookkeeping at `now_ms`: applies heartbeat-deadline and
  /// probation transitions, then drains any Down shard with pending work
  /// (a freshly-declared death or a stray that raced a push past the
  /// routing flip). Returns the explicit rejections produced by drains.
  std::vector<Completion> failover_pass(double now_ms);
  /// Atomically empty worker `w`'s shard and re-queue every orphan the
  /// shrunk fleet can still serve in budget (EDF order preserved); the
  /// rest are shed with explicit Rejected completions.
  std::vector<Completion> drain_worker(std::size_t w, double now_ms);
  /// Mirror worker `w`'s lifecycle state into the routing set and, on a
  /// fresh Down declaration, count the failover and nudge the survivors'
  /// watchdogs. Returns the survivors to notify (outside the lock).
  std::vector<std::size_t> on_went_down(std::size_t w) NETCUT_REQUIRES(mu_);

  FleetConfig config_;           // immutable after construction
  ShardedQueue queue_;           // internally synchronized
  std::vector<std::string> names_;  // immutable after construction
  std::vector<std::unique_ptr<BatchServer>> servers_;  // elements internally synchronized
  std::vector<std::size_t> max_batch_;  // immutable after construction
  /// Guards admission + accounting. Rank kFleet: the outermost lock — the
  /// feasibility bound reads shard sizes (rank kQueue) underneath it; it
  /// is never held across a replica's step.
  mutable util::RankedMutex mu_{util::rank::kFleet, "serve/fleet"};
  std::vector<double> busy_until_ms_ NETCUT_GUARDED_BY(mu_);
  /// Per-worker claim flags: true while some stepper runs worker w's
  /// replica outside the lock, so concurrent steppers skip it instead of
  /// double-serving one replica (the jitter/fault streams are sequential).
  std::vector<char> serving_ NETCUT_GUARDED_BY(mu_);
  std::map<std::uint32_t, TenantCounters> tenants_ NETCUT_GUARDED_BY(mu_);
  // admitted - completed, per tenant
  std::map<std::uint32_t, std::int64_t> inflight_ NETCUT_GUARDED_BY(mu_);
  std::int64_t inflight_total_ NETCUT_GUARDED_BY(mu_) = 0;
  FleetStats stats_ NETCUT_GUARDED_BY(mu_);
  /// Replica lifecycle + fault injection (externally synchronized types,
  /// owned under the fleet lock like the rest of the admission state).
  HealthMonitor monitor_ NETCUT_GUARDED_BY(mu_);
  WorkerFaultInjector injector_ NETCUT_GUARDED_BY(mu_);
  /// Dispatch attempts per worker — the `S` axis of crash=W@S / hang=W@S~D.
  std::vector<std::int64_t> attempts_ NETCUT_GUARDED_BY(mu_);
};

}  // namespace netcut::serve
