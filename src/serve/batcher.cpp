#include "serve/batcher.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace netcut::serve {

BatchFormer::BatchFormer(BatcherConfig config, std::function<double(int)> batch_latency_ms)
    : config_(config), batch_latency_ms_(std::move(batch_latency_ms)) {
  if (config_.max_batch < 1) throw std::invalid_argument("BatchFormer: max_batch must be >= 1");
  if (!batch_latency_ms_) throw std::invalid_argument("BatchFormer: null latency estimate");
}

std::size_t BatchFormer::choose(double now_ms,
                                const std::vector<Request>& edf_pending) const {
  if (edf_pending.empty()) return 0;
  const std::size_t cap =
      std::min(edf_pending.size(), static_cast<std::size_t>(config_.max_batch));
  // EDF order makes the earliest deadline of any prefix the head's deadline.
  const double earliest = edf_pending.front().deadline_ms;
  std::size_t best = 1;  // head is always served, even if already late
  for (std::size_t n = cap; n > 1; --n) {
    if (now_ms + batch_latency_ms_(static_cast<int>(n)) <= earliest) {
      best = n;
      break;
    }
  }
  return best;
}

}  // namespace netcut::serve
