#include "serve/batcher.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace netcut::serve {

BatchFormer::BatchFormer(BatcherConfig config, std::function<double(int)> batch_latency_ms)
    : config_(config), batch_latency_ms_(std::move(batch_latency_ms)) {
  if (config_.max_batch < 1) throw std::invalid_argument("BatchFormer: max_batch must be >= 1");
  if (!batch_latency_ms_) throw std::invalid_argument("BatchFormer: null latency estimate");
}

std::size_t BatchFormer::choose(double now_ms, double head_deadline_ms,
                                std::size_t pending) const {
  if (pending == 0) return 0;
  const std::size_t cap = std::min(pending, static_cast<std::size_t>(config_.max_batch));
  for (std::size_t n = cap; n > 1; --n) {
    if (now_ms + batch_latency_ms_(static_cast<int>(n)) <= head_deadline_ms) return n;
  }
  // Not even a batch of 1 meets the head's deadline: the head is late no
  // matter what, so serve it in the LARGEST batch. Shrinking the batch
  // cannot save the head, but it divides throughput by the batch size —
  // under a saturated queue that collapse is self-sustaining (every later
  // head inherits a longer wait and is hopeless in turn, so the queue is
  // drained serially forever at 1/curve(1) while admission reasons at the
  // amortized batched rate). Draining late work at full amortization is
  // what lets the backlog fall back under the deadline horizon.
  return now_ms + batch_latency_ms_(1) <= head_deadline_ms ? 1 : cap;
}

}  // namespace netcut::serve
