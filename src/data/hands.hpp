// Synthetic stand-in for the HANDS dataset (Han et al., 2020): palm-camera
// images of graspable objects with *probabilistic* grasp-type labels.
//
// Substitution note (see DESIGN.md): the real HANDS dataset is not
// redistributable here, so we render procedural objects whose silhouettes
// map to the paper's five grasp types. Labels are probability distributions
// (objects can be grasped several ways), evaluated by angular similarity —
// the same label structure and metric as the paper.
#pragma once

#include <string>
#include <vector>

#include "tensor/tensor.hpp"
#include "util/rng.hpp"

namespace netcut::data {

using tensor::Tensor;

/// The paper's five grasp types (Section III-B2).
enum class GraspType {
  kOpenPalm = 0,
  kMediumWrap = 1,
  kPowerSphere = 2,
  kParallelExtension = 3,
  kPalmarPinch = 4,
};
inline constexpr int kGraspCount = 5;

const char* grasp_name(GraspType g);

struct Sample {
  Tensor image;   // [3, res, res] in [0, 1]
  Tensor label;   // [5] probability distribution
  GraspType primary;
};

struct HandsConfig {
  int resolution = 32;
  int train_count = 400;
  int test_count = 150;
  std::uint64_t seed = 42;
  double background_noise = 0.06;  // stdev of pixel noise
  double label_jitter = 0.05;      // concentration of label perturbation
};

class HandsDataset {
 public:
  explicit HandsDataset(const HandsConfig& config);

  const std::vector<Sample>& train() const { return train_; }
  const std::vector<Sample>& test() const { return test_; }
  const HandsConfig& config() const { return config_; }

  /// A random subset of the training set (the paper uses 10% of train as
  /// the post-training-quantization calibration set).
  std::vector<const Sample*> calibration_set(double fraction, std::uint64_t seed) const;

 private:
  HandsConfig config_;
  std::vector<Sample> train_;
  std::vector<Sample> test_;
};

/// Renders a single object image for the given grasp type (exposed so tests
/// can probe the renderer directly).
Tensor render_object(GraspType type, int resolution, util::Rng& rng, double background_noise);

/// The label distribution for an object of the given primary grasp type,
/// with per-sample jitter.
Tensor make_label(GraspType type, util::Rng& rng, double jitter);

}  // namespace netcut::data
