// Pseudo-pretrained weight generation — the stand-in for "ImageNet
// pretrained" trunks (see DESIGN.md substitution table).
//
// Real pretraining makes deeper features progressively *more* useful for a
// related target task, up to the depth where they turn source-specific
// (Yosinski et al.). The generator reproduces both properties by actually
// *training* each trunk (with this repository's own backprop) on a
// synthetic source task that stands in for ImageNet:
//
//  1. The source task has ten categories: the five grasp-shape classes the
//     HANDS target task also uses, plus five distractors (ring, cross,
//     diamond, stripes, corner). A superset of the target's visual world —
//     the transfer-learning setting of the paper.
//  2. The trunk is trained end to end on this task with two supervision
//     points: the final head on the full trunk, and an auxiliary head at
//     the specialization-onset cut. Deep supervision makes the features at
//     the onset already sufficient for the (simpler) target classes, so
//     the layers above it specialize on the residual source-task detail —
//     exactly the "last layers are problem-specific" structure layer
//     removal exploits (the plateau in the paper's Figs 4/5).
//  3. BatchNorms train in the frozen-statistics regime (normalized by
//     running statistics, re-collected every epoch) — the standard
//     fine-tuning treatment, and the only numerically sane one once deep
//     feature maps shrink toward 1x1 at the reduced experiment resolution.
//
// Training is deterministic for a given seed. Because it costs minutes for
// the deep trunks, core::pretrained_trunk caches the resulting weights on
// disk (nn::save_params / load_params).
#pragma once

#include <cstdint>
#include <vector>

#include "nn/network.hpp"
#include "tensor/tensor.hpp"
#include "util/rng.hpp"

namespace netcut::data {

inline constexpr int kSourceClasses = 10;  // 5 grasp shapes + 5 distractors

struct PretrainedConfig {
  std::uint64_t seed = 7;
  /// Depth fraction (by block ordinal) of the auxiliary supervision point;
  /// features above it are source-specific.
  double specialization_onset = 0.55;
  /// Source-task training set size (balanced over the ten categories).
  /// Generous relative to the epoch count: a small source set memorizes and
  /// the overfit deep features stop transferring.
  int source_images = 600;
  /// Pretraining epochs.
  int epochs = 16;
  double learning_rate = 2e-3;
  /// Gradients accumulate over this many images per optimizer step.
  int batch_size = 4;
  /// Loss weight of the auxiliary (deep-supervision) head.
  double aux_weight = 1.0;
};

/// Renders one image of the extended source-task category set
/// (0..4: the grasp shapes, 5..9: distractors). Exposed for tests.
tensor::Tensor render_source_object(int category, int resolution, util::Rng& rng,
                                    double background_noise);

struct PretrainReport {
  double final_loss = 0.0;        // mean source-task loss, last epoch
  double source_accuracy = 0.0;   // top-1 on the training set after training
  int steps = 0;
};

/// Pretrains the trunk in place on the synthetic source task and leaves
/// every BatchNorm calibrated. Returns training diagnostics.
PretrainReport generate_pretrained_weights(nn::Graph& trunk, const PretrainedConfig& config);

/// Runs the calibration images through the network in stat-collection mode
/// and installs the observed running statistics into every BatchNorm.
void calibrate_batchnorm(nn::Network& net, const std::vector<const tensor::Tensor*>& images);

}  // namespace netcut::data
