#include "data/hands.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace netcut::data {

const char* grasp_name(GraspType g) {
  switch (g) {
    case GraspType::kOpenPalm: return "OpenPalm";
    case GraspType::kMediumWrap: return "MediumWrap";
    case GraspType::kPowerSphere: return "PowerSphere";
    case GraspType::kParallelExtension: return "ParallelExtension";
    case GraspType::kPalmarPinch: return "PalmarPinch";
  }
  return "Unknown";
}

namespace {

struct Pose {
  double cx, cy;     // center in [0,1] image coords
  double angle;      // radians
  double scale;      // relative size
  float r, g, b;     // object base color
};

Pose random_pose(GraspType type, util::Rng& rng) {
  // Palm-camera poses are near-canonical: during a reach the wrist
  // orients the camera toward the object, so orientation/position/scale
  // vary only moderately.
  Pose p;
  p.cx = rng.uniform(0.42, 0.58);
  p.cy = rng.uniform(0.42, 0.58);
  p.angle = rng.uniform(-0.35, 0.35);
  p.scale = rng.uniform(0.9, 1.1);
  // Object appearance correlates with category (plates and bottles skew
  // warm, balls and cards skew cool, ...) but deliberately *overlaps*
  // between silhouette-confusable pairs: color alone separates only the
  // coarse groups; resolving within a group requires shape, i.e. deeper
  // features. This mirrors real object datasets, where texture/color carry
  // part of the signal and geometry the rest.
  static constexpr float kTint[kGraspCount][3] = {
      {0.80f, 0.35f, 0.30f},  // OpenPalm        (warm)
      {0.75f, 0.45f, 0.25f},  // MediumWrap      (warm, near OpenPalm)
      {0.30f, 0.40f, 0.80f},  // PowerSphere     (cool)
      {0.35f, 0.50f, 0.75f},  // ParallelExt.    (cool, near PowerSphere)
      {0.35f, 0.75f, 0.40f},  // PalmarPinch     (green)
  };
  const float* tint = kTint[static_cast<int>(type)];
  const double w = 0.65;  // tint strength; the rest is per-object variation
  p.r = static_cast<float>(w * tint[0] + (1.0 - w) * rng.uniform(0.2, 0.95));
  p.g = static_cast<float>(w * tint[1] + (1.0 - w) * rng.uniform(0.2, 0.95));
  p.b = static_cast<float>(w * tint[2] + (1.0 - w) * rng.uniform(0.2, 0.95));
  return p;
}

/// Signed-distance-ish coverage of a point (u, v) in object coordinates for
/// each grasp-type silhouette. Returns [0, 1] soft mask.
double silhouette(GraspType type, double u, double v) {
  auto soft = [](double d) { return 1.0 / (1.0 + std::exp(d * 40.0)); };
  switch (type) {
    case GraspType::kOpenPalm: {
      // Large flat plate: wide ellipse.
      const double d = std::sqrt((u * u) / (0.40 * 0.40) + (v * v) / (0.26 * 0.26)) - 1.0;
      return soft(d * 0.3);
    }
    case GraspType::kMediumWrap: {
      // Bottle / cylinder: tall rounded bar.
      const double dx = std::max(0.0, std::abs(u) - 0.12);
      const double dy = std::max(0.0, std::abs(v) - 0.30);
      return soft(std::sqrt(dx * dx + dy * dy) - 0.05);
    }
    case GraspType::kPowerSphere: {
      // Ball: disc with radial shading handled by the caller.
      const double d = std::sqrt(u * u + v * v) - 0.28;
      return soft(d);
    }
    case GraspType::kParallelExtension: {
      // Thin book/card: long, very flat bar.
      const double dx = std::max(0.0, std::abs(u) - 0.38);
      const double dy = std::max(0.0, std::abs(v) - 0.05);
      return soft(std::sqrt(dx * dx + dy * dy) - 0.02);
    }
    case GraspType::kPalmarPinch: {
      // Small pellet: tiny disc.
      const double d = std::sqrt(u * u + v * v) - 0.10;
      return soft(d);
    }
  }
  return 0.0;
}

}  // namespace

Tensor render_object(GraspType type, int resolution, util::Rng& rng,
                     double background_noise) {
  Tensor img(tensor::Shape::chw(3, resolution, resolution));
  const Pose pose = random_pose(type, rng);

  // Background: smooth two-corner gradient (tabletop) plus noise.
  const float bg0 = static_cast<float>(rng.uniform(0.25, 0.6));
  const float bg1 = static_cast<float>(rng.uniform(0.25, 0.6));
  const double ca = std::cos(pose.angle);
  const double sa = std::sin(pose.angle);

  for (int y = 0; y < resolution; ++y) {
    for (int x = 0; x < resolution; ++x) {
      const double fx = (x + 0.5) / resolution;
      const double fy = (y + 0.5) / resolution;
      // Rotate into object coordinates.
      const double du = (fx - pose.cx) / pose.scale;
      const double dv = (fy - pose.cy) / pose.scale;
      const double u = ca * du + sa * dv;
      const double v = -sa * du + ca * dv;

      const double m = silhouette(type, u, v);
      // Radial shading gives spheres a 3-D cue distinguishing them from
      // flat discs of similar extent.
      double shade = 1.0;
      if (type == GraspType::kPowerSphere) {
        const double r2 = (u * u + v * v) / (0.28 * 0.28);
        shade = std::sqrt(std::max(0.0, 1.0 - std::min(1.0, r2))) * 0.6 + 0.4;
      }
      const float bg = bg0 * static_cast<float>(1.0 - fx) + bg1 * static_cast<float>(fy);
      const float base[3] = {pose.r, pose.g, pose.b};
      for (int c = 0; c < 3; ++c) {
        const double obj = base[c] * shade;
        double value = bg * (1.0 - m) + obj * m;
        value += rng.normal(0.0, background_noise);
        img.at(c, y, x) = static_cast<float>(std::clamp(value, 0.0, 1.0));
      }
    }
  }
  return img;
}

Tensor make_label(GraspType type, util::Rng& rng, double jitter) {
  // Base preference distributions: the primary grasp dominates but related
  // grasps keep probability mass (objects afford multiple grasps).
  static const double kBase[kGraspCount][kGraspCount] = {
      // OP    MW    PS    PE    PP        primary:
      {0.70, 0.05, 0.05, 0.15, 0.05},  // OpenPalm (plates also slide: PE)
      {0.05, 0.70, 0.15, 0.05, 0.05},  // MediumWrap (bottles also palm: PS)
      {0.05, 0.20, 0.65, 0.05, 0.05},  // PowerSphere (balls also wrap: MW)
      {0.15, 0.05, 0.05, 0.65, 0.10},  // ParallelExtension (cards also pinch)
      {0.05, 0.05, 0.10, 0.10, 0.70},  // PalmarPinch
  };
  Tensor label(tensor::Shape::vec(kGraspCount));
  double total = 0.0;
  const int t = static_cast<int>(type);
  for (int i = 0; i < kGraspCount; ++i) {
    const double jittered =
        std::max(1e-3, kBase[t][i] * std::exp(rng.normal(0.0, jitter * 3.0)));
    label[i] = static_cast<float>(jittered);
    total += jittered;
  }
  for (int i = 0; i < kGraspCount; ++i)
    label[i] = static_cast<float>(label[i] / total);
  return label;
}

HandsDataset::HandsDataset(const HandsConfig& config) : config_(config) {
  if (config.resolution < 8) throw std::invalid_argument("HandsDataset: resolution too small");
  util::Rng train_rng(util::derive_seed(config.seed, "hands/train"));
  util::Rng test_rng(util::derive_seed(config.seed, "hands/test"));

  auto generate = [&](util::Rng& rng, int count, std::vector<Sample>& out) {
    out.reserve(static_cast<std::size_t>(count));
    for (int i = 0; i < count; ++i) {
      Sample s;
      s.primary = static_cast<GraspType>(i % kGraspCount);  // balanced classes
      s.image = render_object(s.primary, config.resolution, rng, config.background_noise);
      s.label = make_label(s.primary, rng, config.label_jitter);
      out.push_back(std::move(s));
    }
  };
  generate(train_rng, config.train_count, train_);
  generate(test_rng, config.test_count, test_);
}

std::vector<const Sample*> HandsDataset::calibration_set(double fraction,
                                                         std::uint64_t seed) const {
  if (fraction <= 0.0 || fraction > 1.0)
    throw std::invalid_argument("calibration_set: fraction out of range");
  util::Rng rng(util::derive_seed(seed, "hands/calibration"));
  const int count =
      std::max(1, static_cast<int>(fraction * static_cast<double>(train_.size())));
  std::vector<int> order = rng.permutation(static_cast<int>(train_.size()));
  std::vector<const Sample*> out;
  out.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i)
    out.push_back(&train_[static_cast<std::size_t>(order[static_cast<std::size_t>(i)])]);
  return out;
}

}  // namespace netcut::data
