// Synthetic EMG feature generation — stand-in for the Myo-band stream that
// feeds the robotic hand's EMG classifier (Fig 2). Each grasp intent
// produces a characteristic 8-channel activation pattern (per-channel RMS
// features) with additive noise and electrode-shift variation.
#pragma once

#include "data/hands.hpp"

namespace netcut::data {

inline constexpr int kEmgChannels = 8;

struct EmgConfig {
  std::uint64_t seed = 99;
  double noise = 0.15;            // additive feature noise
  double electrode_shift = 0.35;  // channel-rotation blur (donning variation)
};

class EmgGenerator {
 public:
  explicit EmgGenerator(const EmgConfig& config);

  /// An 8-channel RMS feature vector for one muscle contraction with the
  /// given grasp intent.
  Tensor sample(GraspType intent, util::Rng& rng) const;

  /// A labelled dataset of (features, soft label) pairs for training the
  /// EMG classifier.
  std::vector<Sample> dataset(int count, std::uint64_t seed) const;

 private:
  EmgConfig config_;
  // Per-grasp mean activation pattern [grasp][channel].
  float pattern_[kGraspCount][kEmgChannels];
};

}  // namespace netcut::data
