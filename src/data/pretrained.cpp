#include "data/pretrained.hpp"
#include <cstdlib>
#include <cstdio>

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "data/hands.hpp"
#include "nn/activation.hpp"
#include "nn/dense.hpp"
#include "nn/init.hpp"
#include "nn/loss.hpp"
#include "nn/norm.hpp"
#include "nn/optimizer.hpp"
#include "nn/pooling.hpp"

namespace netcut::data {

namespace {

using nn::Graph;
using tensor::Tensor;

// ---------------------------------------------------------------------------
// Source task rendering
// ---------------------------------------------------------------------------

/// Soft silhouettes of the five distractor categories (5..9).
double distractor_silhouette(int category, double u, double v) {
  auto soft = [](double d) { return 1.0 / (1.0 + std::exp(d * 40.0)); };
  switch (category) {
    case 5: {  // ring
      const double r = std::sqrt(u * u + v * v);
      return soft(std::abs(r - 0.26) - 0.07);
    }
    case 6: {  // cross
      const double bar1 = std::max(std::abs(u) - 0.33, std::abs(v) - 0.08);
      const double bar2 = std::max(std::abs(v) - 0.33, std::abs(u) - 0.08);
      return soft(std::min(bar1, bar2));
    }
    case 7: {  // diamond
      return soft(std::abs(u) + std::abs(v) - 0.32);
    }
    case 8: {  // stripes
      const double within = std::max(std::abs(u) - 0.36, std::abs(v) - 0.30);
      const double band = std::abs(std::fmod(std::abs(v) * 10.0, 2.0) - 1.0) - 0.55;
      return soft(std::max(within, band));
    }
    case 9: {  // corner (L-shape)
      const double arm1 = std::max({u - 0.05, -u - 0.30, std::abs(v + 0.12) - 0.18});
      const double arm2 = std::max({v - 0.05, -v - 0.30, std::abs(u + 0.12) - 0.18});
      return soft(std::min(arm1, arm2));
    }
    default:
      throw std::invalid_argument("distractor_silhouette: bad category");
  }
}

/// Appends a pretraining head (GAP -> FC/ReLU -> FC logits) reading from
/// `from`; returns the logits node id. The hidden layer matters: pure
/// linear probes push the trunk toward a brittle, probe-specific feature
/// geometry that transfers poorly; the MLP head absorbs that
/// specialization. (The head trains under a width-scaled learning rate —
/// see below — which also prevents the dying-ReLU collapse a wide head can
/// suffer under a shared rate.)
int add_pretrain_head(Graph& g, int from, int feature_channels, const std::string& name,
                      util::Rng& rng) {
  constexpr int kHidden = 64;
  int x = g.add(std::make_unique<nn::GlobalAvgPool>(), {from}, name + "/gap");
  auto fc1 = std::make_unique<nn::Dense>(feature_channels, kHidden);
  nn::xavier_init_dense(fc1->weight(), rng);
  x = g.add(std::move(fc1), {x}, name + "/fc1");
  x = g.add(std::make_unique<nn::ReLU>(false), {x}, name + "/relu");
  auto fc2 = std::make_unique<nn::Dense>(kHidden, kSourceClasses);
  nn::xavier_init_dense(fc2->weight(), rng);
  return g.add(std::move(fc2), {x}, name + "/logits");
}

std::vector<nn::BatchNorm*> batchnorms_of(Graph& g) {
  std::vector<nn::BatchNorm*> out;
  for (int id = 1; id < g.node_count(); ++id)
    if (g.node(id).layer->kind() == nn::LayerKind::kBatchNorm)
      out.push_back(&static_cast<nn::BatchNorm&>(*g.node(id).layer));
  return out;
}

void collect_bn_stats(nn::Network& net, const std::vector<Tensor>& images, int max_images) {
  auto norms = batchnorms_of(net.graph());
  for (nn::BatchNorm* bn : norms) bn->begin_stat_collection();
  const int count = std::min<int>(max_images, static_cast<int>(images.size()));
  for (int i = 0; i < count; ++i) net.forward(images[static_cast<std::size_t>(i)], false);
  for (nn::BatchNorm* bn : norms) bn->end_stat_collection();
}

}  // namespace

Tensor render_source_object(int category, int resolution, util::Rng& rng,
                            double background_noise) {
  if (category < 0 || category >= kSourceClasses)
    throw std::invalid_argument("render_source_object: bad category");
  if (category < kGraspCount)
    return render_object(static_cast<GraspType>(category), resolution, rng,
                         background_noise);

  // Distractors share the grasp renderer's pose/background conventions,
  // including overlapping per-category tints (see data::random_pose).
  static constexpr float kTint[5][3] = {
      {0.75f, 0.75f, 0.30f},  // ring     (yellow)
      {0.60f, 0.30f, 0.70f},  // cross    (purple)
      {0.70f, 0.70f, 0.35f},  // diamond  (yellow, near ring)
      {0.50f, 0.50f, 0.50f},  // stripes  (gray)
      {0.55f, 0.30f, 0.65f},  // corner   (purple, near cross)
  };
  Tensor img(tensor::Shape::chw(3, resolution, resolution));
  const double cx = rng.uniform(0.42, 0.58);
  const double cy = rng.uniform(0.42, 0.58);
  const double angle = rng.uniform(-0.35, 0.35);
  const double scale = rng.uniform(0.9, 1.1);
  const float* tint = kTint[category - kGraspCount];
  const double w = 0.65;
  const float col[3] = {static_cast<float>(w * tint[0] + (1.0 - w) * rng.uniform(0.2, 0.95)),
                        static_cast<float>(w * tint[1] + (1.0 - w) * rng.uniform(0.2, 0.95)),
                        static_cast<float>(w * tint[2] + (1.0 - w) * rng.uniform(0.2, 0.95))};
  const float bg0 = static_cast<float>(rng.uniform(0.25, 0.6));
  const float bg1 = static_cast<float>(rng.uniform(0.25, 0.6));
  const double ca = std::cos(angle), sa = std::sin(angle);

  for (int y = 0; y < resolution; ++y) {
    for (int x = 0; x < resolution; ++x) {
      const double fx = (x + 0.5) / resolution;
      const double fy = (y + 0.5) / resolution;
      const double du = (fx - cx) / scale;
      const double dv = (fy - cy) / scale;
      const double u = ca * du + sa * dv;
      const double v = -sa * du + ca * dv;
      const double m = distractor_silhouette(category, u, v);
      const float bg = bg0 * static_cast<float>(1.0 - fx) + bg1 * static_cast<float>(fy);
      for (int c = 0; c < 3; ++c) {
        double value = bg * (1.0 - m) + col[c] * m;
        value += rng.normal(0.0, background_noise);
        img.at(c, y, x) = static_cast<float>(std::clamp(value, 0.0, 1.0));
      }
    }
  }
  return img;
}

PretrainReport generate_pretrained_weights(nn::Graph& trunk,
                                           const PretrainedConfig& config) {
  if (config.source_images < kSourceClasses)
    throw std::invalid_argument("generate_pretrained_weights: too few source images");
  util::Rng rng(util::derive_seed(config.seed, "pretrain"));
  const int resolution = trunk.input_shape()[1];
  const int trunk_nodes = trunk.node_count();

  // Auxiliary supervision point: the block-end cut at the onset fraction.
  const auto blocks = trunk.blocks();
  if (blocks.empty())
    throw std::invalid_argument("generate_pretrained_weights: trunk has no blocks");
  int onset_index = static_cast<int>(config.specialization_onset *
                                     static_cast<double>(blocks.size())) -
                    1;
  onset_index = std::clamp(onset_index, 0, static_cast<int>(blocks.size()) - 2);
  const int onset_node = blocks[static_cast<std::size_t>(onset_index)].last_node;

  // Training graph: trunk copy + aux head at the onset + final head on top.
  Graph g = trunk;
  nn::init_graph(g, rng);
  // Residual stability: BatchNorms that feed an Add start with a small
  // gamma, so residual branches begin near-identity and activation
  // magnitudes cannot compound across the deep Add chains (the zero-gamma
  // initialization of Goyal et al., without which the MobileNetV2/ResNet
  // trunks saturate their clipped activations and stop learning).
  for (int id = 1; id < g.node_count(); ++id) {
    if (g.node(id).layer->kind() != nn::LayerKind::kAdd) continue;
    for (int src : g.node(id).inputs) {
      nn::Layer& producer = *g.node(src).layer;
      if (producer.kind() == nn::LayerKind::kBatchNorm)
        static_cast<nn::BatchNorm&>(producer).gamma().fill(0.2f);
    }
  }
  const std::vector<tensor::Shape> shapes = g.infer_shapes();
  const int aux_logits = add_pretrain_head(
      g, onset_node, shapes[static_cast<std::size_t>(onset_node)][0], "aux", rng);
  const int final_logits = add_pretrain_head(
      g, trunk_nodes - 1, shapes[static_cast<std::size_t>(trunk_nodes - 1)][0], "final", rng);
  nn::Network net(std::move(g));
  for (nn::BatchNorm* bn : batchnorms_of(net.graph())) bn->set_freeze_stats(true);

  // Source-task dataset, balanced over the ten categories.
  util::Rng render_rng(util::derive_seed(config.seed, "pretrain/source"));
  std::vector<Tensor> images;
  std::vector<Tensor> targets;  // one-hot over the source classes
  std::vector<int> labels;
  images.reserve(static_cast<std::size_t>(config.source_images));
  for (int i = 0; i < config.source_images; ++i) {
    const int cls = i % kSourceClasses;
    images.push_back(render_source_object(cls, resolution, render_rng, 0.05));
    Tensor t(tensor::Shape::vec(kSourceClasses));
    t[cls] = 1.0f;
    targets.push_back(std::move(t));
    labels.push_back(cls);
  }

  collect_bn_stats(net, images, 40);

  // Trunk and heads get separate optimizers: a linear probe's logits move
  // by ~lr * width per Adam step, so wide heads need a width-scaled rate
  // to avoid oscillation.
  std::vector<tensor::Tensor*> trunk_params, trunk_grads;
  std::vector<tensor::Tensor*> aux_params, aux_grads, final_params, final_grads;
  for (int id = 1; id < net.graph().node_count(); ++id) {
    nn::Layer& layer = *net.graph().node(id).layer;
    auto& params = id < trunk_nodes ? trunk_params
                   : id <= aux_logits ? aux_params
                                      : final_params;
    auto& grads = id < trunk_nodes ? trunk_grads
                  : id <= aux_logits ? aux_grads
                                     : final_grads;
    for (tensor::Tensor* p : layer.params()) params.push_back(p);
    for (tensor::Tensor* g2 : layer.grads()) grads.push_back(g2);
  }
  auto head_lr = [&](int width) {
    return config.learning_rate * 64.0 / std::max(64, width);
  };
  nn::Adam opt(config.learning_rate);
  opt.bind(trunk_params, trunk_grads);
  nn::Adam aux_opt(head_lr(shapes[static_cast<std::size_t>(onset_node)][0]));
  aux_opt.bind(aux_params, aux_grads);
  nn::Adam final_opt(head_lr(shapes[static_cast<std::size_t>(trunk_nodes - 1)][0]));
  final_opt.bind(final_params, final_grads);

  PretrainReport report;
  const int n = static_cast<int>(images.size());
  const int batch = std::max(1, config.batch_size);
  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    // Step-decay schedule: settle in the final third.
    if (epoch == config.epochs * 2 / 3) {
      opt.set_learning_rate(opt.learning_rate() * 0.3);
      aux_opt.set_learning_rate(aux_opt.learning_rate() * 0.3);
      final_opt.set_learning_rate(final_opt.learning_rate() * 0.3);
    }
    double epoch_loss = 0.0;
    double epoch_aux = 0.0, epoch_fin = 0.0;
    int in_batch = 0;
    int steps_since_refresh = 0;
    net.zero_grads();
    for (int i : rng.permutation(n)) {
      const auto logits = net.forward_collect(images[static_cast<std::size_t>(i)],
                                              {aux_logits, final_logits}, /*train=*/true);
      const auto aux = nn::loss::soft_cross_entropy(logits[0], targets[static_cast<std::size_t>(i)]);
      const auto fin = nn::loss::soft_cross_entropy(logits[1], targets[static_cast<std::size_t>(i)]);
      Tensor aux_grad = aux.grad;
      aux_grad *= static_cast<float>(config.aux_weight / batch);
      Tensor fin_grad = fin.grad;
      fin_grad *= 1.0f / static_cast<float>(batch);
      net.backward_multi({{aux_logits, aux_grad}, {final_logits, fin_grad}});
      if (++in_batch == batch) {
        opt.step();
        aux_opt.step();
        final_opt.step();
        net.zero_grads();
        in_batch = 0;
        ++report.steps;
        // Frozen statistics drift as the weights move; refresh them a few
        // times per epoch so clipped activations stay in range.
        if (++steps_since_refresh >= 30) {
          collect_bn_stats(net, images, 16);
          steps_since_refresh = 0;
        }
      }
      epoch_loss += fin.value + config.aux_weight * aux.value;
      epoch_aux += aux.value;
      epoch_fin += fin.value;
    }
    if (in_batch > 0) {
      opt.step();
      ++report.steps;
    }
    report.final_loss = epoch_loss / n;
    if (std::getenv("NETCUT_PRETRAIN_VERBOSE"))
      std::fprintf(stderr, "[pretrain] epoch %d loss %.4f (aux %.3f final %.3f, lr %.2e)\n",
                   epoch, report.final_loss, epoch_aux / n, epoch_fin / n,
                   opt.learning_rate());
    // Statistics drift with the weights: re-collect once per epoch.
    collect_bn_stats(net, images, 40);
  }

  // Source-task accuracy (diagnostic; also a test hook).
  int correct = 0;
  for (int i = 0; i < n; ++i) {
    const auto logits =
        net.forward_collect(images[static_cast<std::size_t>(i)], {final_logits}, false);
    int best = 0;
    for (int c = 1; c < kSourceClasses; ++c)
      if (logits[0][c] > logits[0][best]) best = c;
    if (best == labels[static_cast<std::size_t>(i)]) ++correct;
  }
  report.source_accuracy = static_cast<double>(correct) / n;

  // Copy the trained trunk portion (weights + BN statistics) back.
  for (int id = 1; id < trunk_nodes; ++id) {
    nn::Layer& src = *net.graph().node(id).layer;
    nn::Layer& dst = *trunk.node(id).layer;
    const auto src_params = src.params();
    const auto dst_params = dst.params();
    for (std::size_t k = 0; k < src_params.size(); ++k) *dst_params[k] = *src_params[k];
    if (src.kind() == nn::LayerKind::kBatchNorm) {
      auto& sbn = static_cast<nn::BatchNorm&>(src);
      auto& dbn = static_cast<nn::BatchNorm&>(dst);
      dbn.running_mean() = sbn.running_mean();
      dbn.running_var() = sbn.running_var();
    }
  }
  return report;
}

void calibrate_batchnorm(nn::Network& net,
                         const std::vector<const tensor::Tensor*>& images) {
  if (images.empty()) throw std::invalid_argument("calibrate_batchnorm: no images");
  auto norms = batchnorms_of(net.graph());
  for (nn::BatchNorm* bn : norms) bn->begin_stat_collection();
  for (const tensor::Tensor* img : images) net.forward(*img, /*train=*/false);
  for (nn::BatchNorm* bn : norms) bn->end_stat_collection();
}

}  // namespace netcut::data
