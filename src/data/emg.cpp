#include "data/emg.hpp"

#include <cmath>

namespace netcut::data {

EmgGenerator::EmgGenerator(const EmgConfig& config) : config_(config) {
  // Fixed characteristic patterns: each grasp recruits a different subset
  // of forearm muscles. Generated once from the seed so the "subject" is
  // stable across the session.
  util::Rng rng(util::derive_seed(config.seed, "emg/patterns"));
  for (int g = 0; g < kGraspCount; ++g) {
    for (int c = 0; c < kEmgChannels; ++c) {
      // Smooth bump centered at a grasp-specific channel.
      const double center = g * static_cast<double>(kEmgChannels) / kGraspCount;
      const double dist = std::min(std::abs(c - center),
                                   kEmgChannels - std::abs(c - center));  // circular band
      pattern_[g][c] = static_cast<float>(std::exp(-dist * dist / 2.0) * rng.uniform(0.7, 1.0) +
                                          rng.uniform(0.0, 0.15));
    }
  }
}

Tensor EmgGenerator::sample(GraspType intent, util::Rng& rng) const {
  Tensor x(tensor::Shape::vec(kEmgChannels));
  const int g = static_cast<int>(intent);
  // Electrode shift: circular blur of the pattern by a random sub-channel
  // offset, modelling band-donning variation.
  const double shift = rng.normal(0.0, config_.electrode_shift);
  for (int c = 0; c < kEmgChannels; ++c) {
    const double pos = c + shift;
    const int c0 = static_cast<int>(std::floor(pos));
    const double frac = pos - c0;
    const int a = ((c0 % kEmgChannels) + kEmgChannels) % kEmgChannels;
    const int b = (a + 1) % kEmgChannels;
    double v = pattern_[g][a] * (1.0 - frac) + pattern_[g][b] * frac;
    v *= rng.uniform(0.8, 1.2);          // contraction-strength variation
    v += rng.normal(0.0, config_.noise);  // sensor noise
    x[c] = static_cast<float>(std::max(0.0, v));
  }
  return x;
}

std::vector<Sample> EmgGenerator::dataset(int count, std::uint64_t seed) const {
  util::Rng rng(util::derive_seed(seed, "emg/dataset"));
  std::vector<Sample> out;
  out.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    Sample s;
    s.primary = static_cast<GraspType>(i % kGraspCount);
    s.image = sample(s.primary, rng);  // rank-1 "image": the feature vector
    s.label = make_label(s.primary, rng, 0.05);
    out.push_back(std::move(s));
  }
  return out;
}

}  // namespace netcut::data
