// ε-Support Vector Regression with an RBF kernel (Section V-B2).
//
// Solved in the β = α − α* formulation:
//     min_β  ½ βᵀKβ − yᵀβ + ε Σ|β_i|
//     s.t.   Σ β_i = 0,  |β_i| ≤ C
// by exact pairwise (SMO-style) coordinate optimization: each (i, j) pair
// update moves (β_i + δ, β_j − δ), preserving the equality constraint, with
// the 1-D piecewise-quadratic subproblem solved in closed form across its
// sign regions and kinks. The training sets here are small (one row per
// TRN), so full pair sweeps to convergence are cheap and robust.
#pragma once

#include <vector>

namespace netcut::ml {

enum class KernelType { kRbf, kLinear };

struct SvrConfig {
  KernelType kernel = KernelType::kRbf;
  double gamma = 0.1;   // RBF kernel coefficient (paper's tuned value)
  double c = 1e6;       // regularization parameter (paper's tuned value)
  double epsilon = 1e-3;  // ε-insensitive tube half-width
  int max_sweeps = 400;
  double tol = 1e-9;    // stop when a full sweep improves less than this
};

class Svr {
 public:
  explicit Svr(SvrConfig config = {});

  /// x: n rows of d features each; y: n targets.
  void fit(const std::vector<std::vector<double>>& x, const std::vector<double>& y);

  double predict(const std::vector<double>& x) const;
  std::vector<double> predict(const std::vector<std::vector<double>>& x) const;

  bool trained() const { return trained_; }
  int support_vector_count() const;
  double bias() const { return bias_; }
  const SvrConfig& config() const { return config_; }

 private:
  double kernel(const std::vector<double>& a, const std::vector<double>& b) const;

  SvrConfig config_;
  bool trained_ = false;
  std::vector<std::vector<double>> support_x_;
  std::vector<double> beta_;
  double bias_ = 0.0;
};

}  // namespace netcut::ml
