#include "ml/model_selection.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "ml/svr.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace netcut::ml {

void Standardizer::fit(const std::vector<std::vector<double>>& x) {
  if (x.empty()) throw std::invalid_argument("Standardizer::fit: empty input");
  const std::size_t d = x[0].size();
  mean_.assign(d, 0.0);
  stdev_.assign(d, 0.0);
  for (const auto& row : x) {
    if (row.size() != d) throw std::invalid_argument("Standardizer::fit: ragged input");
    for (std::size_t k = 0; k < d; ++k) mean_[k] += row[k];
  }
  for (std::size_t k = 0; k < d; ++k) mean_[k] /= static_cast<double>(x.size());
  for (const auto& row : x)
    for (std::size_t k = 0; k < d; ++k) stdev_[k] += (row[k] - mean_[k]) * (row[k] - mean_[k]);
  for (std::size_t k = 0; k < d; ++k) {
    stdev_[k] = std::sqrt(stdev_[k] / static_cast<double>(x.size()));
    if (stdev_[k] < 1e-12) stdev_[k] = 1.0;  // constant feature: leave centered
  }
  fitted_ = true;
}

std::vector<double> Standardizer::transform(const std::vector<double>& x) const {
  if (!fitted_) throw std::logic_error("Standardizer::transform before fit");
  if (x.size() != mean_.size())
    throw std::invalid_argument("Standardizer::transform: dimension mismatch");
  std::vector<double> out(x.size());
  for (std::size_t k = 0; k < x.size(); ++k) out[k] = (x[k] - mean_[k]) / stdev_[k];
  return out;
}

std::vector<std::vector<double>> Standardizer::transform(
    const std::vector<std::vector<double>>& x) const {
  std::vector<std::vector<double>> out;
  out.reserve(x.size());
  for (const auto& row : x) out.push_back(transform(row));
  return out;
}

std::vector<Fold> kfold(int n, int folds, std::uint64_t seed) {
  if (folds < 2 || folds > n) throw std::invalid_argument("kfold: bad fold count");
  util::Rng rng(util::derive_seed(seed, "kfold"));
  const std::vector<int> order = rng.permutation(n);

  std::vector<Fold> out(static_cast<std::size_t>(folds));
  for (int i = 0; i < n; ++i) {
    const int fold = i % folds;
    for (int f = 0; f < folds; ++f) {
      if (f == fold)
        out[static_cast<std::size_t>(f)].test_indices.push_back(order[static_cast<std::size_t>(i)]);
      else
        out[static_cast<std::size_t>(f)].train_indices.push_back(
            order[static_cast<std::size_t>(i)]);
    }
  }
  return out;
}

double cross_validate(
    const std::vector<std::vector<double>>& x, const std::vector<double>& y, int folds,
    std::uint64_t seed,
    const std::function<std::vector<double>(const std::vector<std::vector<double>>&,
                                            const std::vector<double>&,
                                            const std::vector<std::vector<double>>&)>&
        fit_predict,
    const std::function<double(const std::vector<double>&, const std::vector<double>&)>&
        score) {
  if (x.size() != y.size() || x.empty())
    throw std::invalid_argument("cross_validate: bad dataset");
  const auto splits = kfold(static_cast<int>(x.size()), folds, seed);
  std::vector<double> errors;
  errors.reserve(splits.size());
  for (const Fold& fold : splits) {
    std::vector<std::vector<double>> train_x, test_x;
    std::vector<double> train_y, test_y;
    for (int i : fold.train_indices) {
      train_x.push_back(x[static_cast<std::size_t>(i)]);
      train_y.push_back(y[static_cast<std::size_t>(i)]);
    }
    for (int i : fold.test_indices) {
      test_x.push_back(x[static_cast<std::size_t>(i)]);
      test_y.push_back(y[static_cast<std::size_t>(i)]);
    }
    const std::vector<double> pred = fit_predict(train_x, train_y, test_x);
    errors.push_back(score(pred, test_y));
  }
  return util::mean(errors);
}

std::vector<GridPoint> grid_search_svr(const std::vector<std::vector<double>>& x,
                                       const std::vector<double>& y,
                                       const std::vector<double>& gammas,
                                       const std::vector<double>& cs, int folds,
                                       std::uint64_t seed) {
  std::vector<GridPoint> points;
  for (double gamma : gammas) {
    for (double c : cs) {
      SvrConfig cfg;
      cfg.gamma = gamma;
      cfg.c = c;
      const double err = cross_validate(
          x, y, folds, seed,
          [&cfg](const std::vector<std::vector<double>>& tx, const std::vector<double>& ty,
                 const std::vector<std::vector<double>>& ex) {
            Svr svr(cfg);
            svr.fit(tx, ty);
            return svr.predict(ex);
          },
          [](const std::vector<double>& pred, const std::vector<double>& truth) {
            return util::rmse(pred, truth);
          });
      points.push_back({gamma, c, err});
    }
  }
  std::sort(points.begin(), points.end(),
            [](const GridPoint& a, const GridPoint& b) { return a.cv_error < b.cv_error; });
  return points;
}

}  // namespace netcut::ml
