#include "ml/svr.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace netcut::ml {

Svr::Svr(SvrConfig config) : config_(config) {
  if (config_.c <= 0 || config_.epsilon < 0 || config_.gamma <= 0)
    throw std::invalid_argument("Svr: invalid hyperparameters");
}

double Svr::kernel(const std::vector<double>& a, const std::vector<double>& b) const {
  if (a.size() != b.size()) throw std::invalid_argument("Svr::kernel: dimension mismatch");
  if (config_.kernel == KernelType::kLinear) {
    double dot = 0.0;
    for (std::size_t k = 0; k < a.size(); ++k) dot += a[k] * b[k];
    return dot;
  }
  double d2 = 0.0;
  for (std::size_t k = 0; k < a.size(); ++k) {
    const double d = a[k] - b[k];
    d2 += d * d;
  }
  return std::exp(-config_.gamma * d2);
}

void Svr::fit(const std::vector<std::vector<double>>& x, const std::vector<double>& y) {
  const int n = static_cast<int>(x.size());
  if (n < 2 || y.size() != x.size()) throw std::invalid_argument("Svr::fit: bad training set");

  // Precompute the kernel matrix (n is small: one row per TRN).
  std::vector<std::vector<double>> K(static_cast<std::size_t>(n),
                                     std::vector<double>(static_cast<std::size_t>(n)));
  for (int i = 0; i < n; ++i)
    for (int j = i; j < n; ++j) {
      const double v = kernel(x[static_cast<std::size_t>(i)], x[static_cast<std::size_t>(j)]);
      K[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] = v;
      K[static_cast<std::size_t>(j)][static_cast<std::size_t>(i)] = v;
    }

  std::vector<double> beta(static_cast<std::size_t>(n), 0.0);
  // g_i = (Kβ)_i − y_i : gradient of the smooth part.
  std::vector<double> g(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) g[static_cast<std::size_t>(i)] = -y[static_cast<std::size_t>(i)];

  const double C = config_.c;
  const double eps = config_.epsilon;

  // Change of the objective when moving (β_i + δ, β_j − δ).
  auto delta_objective = [&](int i, int j, double eta, double delta) {
    const auto iu = static_cast<std::size_t>(i);
    const auto ju = static_cast<std::size_t>(j);
    return (g[iu] - g[ju]) * delta + 0.5 * eta * delta * delta +
           eps * (std::abs(beta[iu] + delta) - std::abs(beta[iu])) +
           eps * (std::abs(beta[ju] - delta) - std::abs(beta[ju]));
  };

  for (int sweep = 0; sweep < config_.max_sweeps; ++sweep) {
    double improvement = 0.0;
    for (int i = 0; i < n; ++i) {
      for (int j = i + 1; j < n; ++j) {
        const auto iu = static_cast<std::size_t>(i);
        const auto ju = static_cast<std::size_t>(j);
        const double eta = K[iu][iu] + K[ju][ju] - 2.0 * K[iu][ju];
        if (eta < 1e-12) continue;

        // Feasible interval for δ from the box |β ± δ| ≤ C.
        const double lo = std::max(-C - beta[iu], beta[ju] - C);
        const double hi = std::min(C - beta[iu], beta[ju] + C);
        if (lo >= hi) continue;

        // Candidate minimizers: the stationary point of each sign region,
        // the two kinks, and the interval ends.
        double best_delta = 0.0;
        double best_obj = 0.0;
        auto consider = [&](double delta) {
          delta = std::clamp(delta, lo, hi);
          const double obj = delta_objective(i, j, eta, delta);
          if (obj < best_obj - 1e-15) {
            best_obj = obj;
            best_delta = delta;
          }
        };
        for (const double si : {-1.0, 1.0})
          for (const double sj : {-1.0, 1.0})
            consider(-(g[iu] - g[ju] + eps * (si - sj)) / eta);
        consider(-beta[iu]);  // kink: β_i + δ = 0
        consider(beta[ju]);   // kink: β_j − δ = 0
        consider(lo);
        consider(hi);

        if (best_obj < -1e-15) {
          beta[iu] += best_delta;
          beta[ju] -= best_delta;
          for (int k = 0; k < n; ++k) {
            const auto ku = static_cast<std::size_t>(k);
            g[ku] += best_delta * (K[ku][iu] - K[ku][ju]);
          }
          improvement -= best_obj;
        }
      }
    }
    if (improvement < config_.tol) break;
  }

  // Bias from the KKT conditions of the free support vectors:
  //   0 < β_i < C  =>  y_i − f(x_i) = +ε  =>  b = −g_i − ε
  //  −C < β_i < 0  =>  y_i − f(x_i) = −ε  =>  b = −g_i + ε
  double b_sum = 0.0;
  int b_count = 0;
  const double margin = 1e-8 * C;
  for (int i = 0; i < n; ++i) {
    const auto iu = static_cast<std::size_t>(i);
    if (beta[iu] > margin && beta[iu] < C - margin) {
      b_sum += -g[iu] - eps;
      ++b_count;
    } else if (beta[iu] < -margin && beta[iu] > -C + margin) {
      b_sum += -g[iu] + eps;
      ++b_count;
    }
  }
  if (b_count > 0) {
    bias_ = b_sum / b_count;
  } else {
    // Degenerate fit (all β at bounds or zero): fall back to matching the
    // mean residual.
    double r = 0.0;
    for (int i = 0; i < n; ++i) {
      const auto iu = static_cast<std::size_t>(i);
      r += y[iu];
      for (int j = 0; j < n; ++j)
        r -= beta[static_cast<std::size_t>(j)] * K[iu][static_cast<std::size_t>(j)];
    }
    bias_ = r / n;
  }

  support_x_.clear();
  beta_.clear();
  for (int i = 0; i < n; ++i) {
    const auto iu = static_cast<std::size_t>(i);
    if (std::abs(beta[iu]) > margin) {
      support_x_.push_back(x[iu]);
      beta_.push_back(beta[iu]);
    }
  }
  trained_ = true;
}

double Svr::predict(const std::vector<double>& x) const {
  if (!trained_) throw std::logic_error("Svr::predict before fit");
  double f = bias_;
  for (std::size_t i = 0; i < support_x_.size(); ++i)
    f += beta_[i] * kernel(support_x_[i], x);
  return f;
}

std::vector<double> Svr::predict(const std::vector<std::vector<double>>& x) const {
  std::vector<double> out;
  out.reserve(x.size());
  for (const auto& row : x) out.push_back(predict(row));
  return out;
}

int Svr::support_vector_count() const { return static_cast<int>(support_x_.size()); }

}  // namespace netcut::ml
