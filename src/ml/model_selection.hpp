// Feature standardization, K-fold cross-validation, and grid search — the
// paper tunes the SVR's (γ, C) with grid search under 10-fold CV on a 20%
// train split and notes grid search beat random search at this sample size.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

namespace netcut::ml {

/// Per-feature z-score standardization fit on the training set.
class Standardizer {
 public:
  void fit(const std::vector<std::vector<double>>& x);
  std::vector<double> transform(const std::vector<double>& x) const;
  std::vector<std::vector<double>> transform(const std::vector<std::vector<double>>& x) const;
  bool fitted() const { return fitted_; }

 private:
  bool fitted_ = false;
  std::vector<double> mean_;
  std::vector<double> stdev_;
};

struct Fold {
  std::vector<int> train_indices;
  std::vector<int> test_indices;
};

/// Deterministic shuffled K-fold split of [0, n).
std::vector<Fold> kfold(int n, int folds, std::uint64_t seed);

/// Fits on each fold's train part via `fit_predict` (which must return
/// predictions for the given test rows) and returns the mean of
/// `score` over folds. Lower is better by convention (it's an error).
double cross_validate(
    const std::vector<std::vector<double>>& x, const std::vector<double>& y, int folds,
    std::uint64_t seed,
    const std::function<std::vector<double>(const std::vector<std::vector<double>>& train_x,
                                            const std::vector<double>& train_y,
                                            const std::vector<std::vector<double>>& test_x)>&
        fit_predict,
    const std::function<double(const std::vector<double>& predictions,
                               const std::vector<double>& truths)>& score);

struct GridPoint {
  double gamma = 0.0;
  double c = 0.0;
  double cv_error = 0.0;
};

/// Exhaustive (γ, C) grid search minimizing the CV error; returns every
/// evaluated point with the best first.
std::vector<GridPoint> grid_search_svr(const std::vector<std::vector<double>>& x,
                                       const std::vector<double>& y,
                                       const std::vector<double>& gammas,
                                       const std::vector<double>& cs, int folds,
                                       std::uint64_t seed);

}  // namespace netcut::ml
