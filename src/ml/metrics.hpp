// Accuracy metrics for probability-distribution predictions. The paper
// scores the visual classifier by *angular similarity* between the
// predicted grasp distribution and the probabilistic label (Section III-A).
#pragma once

#include <vector>

#include "tensor/tensor.hpp"

namespace netcut::ml {

/// 1 − (2/π)·arccos( p·q / (|p||q|) ), in [0, 1] for nonnegative vectors.
double angular_similarity(const tensor::Tensor& p, const tensor::Tensor& q);

/// (2/π)·arccos( p·q / (|p||q|) ) — the complementary distance.
double angular_distance(const tensor::Tensor& p, const tensor::Tensor& q);

/// Fraction of samples where argmax(prediction) == argmax(label).
double top1_agreement(const std::vector<tensor::Tensor>& predictions,
                      const std::vector<tensor::Tensor>& labels);

/// Mean angular similarity over a batch.
double mean_angular_similarity(const std::vector<tensor::Tensor>& predictions,
                               const std::vector<tensor::Tensor>& labels);

}  // namespace netcut::ml
