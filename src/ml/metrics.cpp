#include "ml/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace netcut::ml {

double angular_distance(const tensor::Tensor& p, const tensor::Tensor& q) {
  if (p.shape() != q.shape()) throw std::invalid_argument("angular_distance: shape mismatch");
  double dot = 0.0, np = 0.0, nq = 0.0;
  for (std::int64_t i = 0; i < p.numel(); ++i) {
    dot += static_cast<double>(p[i]) * q[i];
    np += static_cast<double>(p[i]) * p[i];
    nq += static_cast<double>(q[i]) * q[i];
  }
  if (np <= 0.0 || nq <= 0.0) throw std::invalid_argument("angular_distance: zero vector");
  const double cosine = std::clamp(dot / std::sqrt(np * nq), -1.0, 1.0);
  return 2.0 / M_PI * std::acos(cosine);
}

double angular_similarity(const tensor::Tensor& p, const tensor::Tensor& q) {
  return 1.0 - angular_distance(p, q);
}

namespace {
int argmax(const tensor::Tensor& t) {
  int best = 0;
  for (std::int64_t i = 1; i < t.numel(); ++i)
    if (t[i] > t[best]) best = static_cast<int>(i);
  return best;
}
}  // namespace

double top1_agreement(const std::vector<tensor::Tensor>& predictions,
                      const std::vector<tensor::Tensor>& labels) {
  if (predictions.size() != labels.size() || predictions.empty())
    throw std::invalid_argument("top1_agreement: bad batch");
  int hits = 0;
  for (std::size_t i = 0; i < predictions.size(); ++i)
    if (argmax(predictions[i]) == argmax(labels[i])) ++hits;
  return static_cast<double>(hits) / static_cast<double>(predictions.size());
}

double mean_angular_similarity(const std::vector<tensor::Tensor>& predictions,
                               const std::vector<tensor::Tensor>& labels) {
  if (predictions.size() != labels.size() || predictions.empty())
    throw std::invalid_argument("mean_angular_similarity: bad batch");
  double s = 0.0;
  for (std::size_t i = 0; i < predictions.size(); ++i)
    s += angular_similarity(predictions[i], labels[i]);
  return s / static_cast<double>(predictions.size());
}

}  // namespace netcut::ml
