// Ordinary least-squares linear regression — the baseline the paper uses
// to justify the RBF kernel (23.81% error vs 4.28%).
#pragma once

#include <vector>

namespace netcut::ml {

class LinearRegression {
 public:
  /// ridge > 0 adds Tikhonov damping for numerical robustness.
  explicit LinearRegression(double ridge = 1e-8);

  void fit(const std::vector<std::vector<double>>& x, const std::vector<double>& y);
  double predict(const std::vector<double>& x) const;
  std::vector<double> predict(const std::vector<std::vector<double>>& x) const;

  bool trained() const { return trained_; }
  const std::vector<double>& coefficients() const { return coef_; }
  double intercept() const { return intercept_; }

 private:
  double ridge_;
  bool trained_ = false;
  std::vector<double> coef_;
  double intercept_ = 0.0;
};

/// Solves A w = b for symmetric positive-definite A (Gaussian elimination
/// with partial pivoting). Exposed for tests.
std::vector<double> solve_linear_system(std::vector<std::vector<double>> a,
                                        std::vector<double> b);

}  // namespace netcut::ml
