#include "ml/linreg.hpp"

#include <cmath>
#include <stdexcept>

namespace netcut::ml {

std::vector<double> solve_linear_system(std::vector<std::vector<double>> a,
                                        std::vector<double> b) {
  const int n = static_cast<int>(a.size());
  for (int col = 0; col < n; ++col) {
    // Partial pivot.
    int pivot = col;
    for (int row = col + 1; row < n; ++row)
      if (std::abs(a[static_cast<std::size_t>(row)][static_cast<std::size_t>(col)]) >
          std::abs(a[static_cast<std::size_t>(pivot)][static_cast<std::size_t>(col)]))
        pivot = row;
    std::swap(a[static_cast<std::size_t>(col)], a[static_cast<std::size_t>(pivot)]);
    std::swap(b[static_cast<std::size_t>(col)], b[static_cast<std::size_t>(pivot)]);

    const double diag = a[static_cast<std::size_t>(col)][static_cast<std::size_t>(col)];
    if (std::abs(diag) < 1e-14) throw std::runtime_error("solve_linear_system: singular matrix");
    for (int row = col + 1; row < n; ++row) {
      const double f =
          a[static_cast<std::size_t>(row)][static_cast<std::size_t>(col)] / diag;
      if (f == 0.0) continue;
      for (int k = col; k < n; ++k)
        a[static_cast<std::size_t>(row)][static_cast<std::size_t>(k)] -=
            f * a[static_cast<std::size_t>(col)][static_cast<std::size_t>(k)];
      b[static_cast<std::size_t>(row)] -= f * b[static_cast<std::size_t>(col)];
    }
  }
  std::vector<double> w(static_cast<std::size_t>(n));
  for (int row = n - 1; row >= 0; --row) {
    double s = b[static_cast<std::size_t>(row)];
    for (int k = row + 1; k < n; ++k)
      s -= a[static_cast<std::size_t>(row)][static_cast<std::size_t>(k)] *
           w[static_cast<std::size_t>(k)];
    w[static_cast<std::size_t>(row)] =
        s / a[static_cast<std::size_t>(row)][static_cast<std::size_t>(row)];
  }
  return w;
}

LinearRegression::LinearRegression(double ridge) : ridge_(ridge) {
  if (ridge < 0) throw std::invalid_argument("LinearRegression: negative ridge");
}

void LinearRegression::fit(const std::vector<std::vector<double>>& x,
                           const std::vector<double>& y) {
  if (x.empty() || x.size() != y.size())
    throw std::invalid_argument("LinearRegression::fit: bad training set");
  const int n = static_cast<int>(x.size());
  const int d = static_cast<int>(x[0].size()) + 1;  // + intercept column

  // Normal equations: (XᵀX + λI) w = Xᵀy with an appended 1s column.
  std::vector<std::vector<double>> xtx(static_cast<std::size_t>(d),
                                       std::vector<double>(static_cast<std::size_t>(d), 0.0));
  std::vector<double> xty(static_cast<std::size_t>(d), 0.0);
  for (int i = 0; i < n; ++i) {
    std::vector<double> row = x[static_cast<std::size_t>(i)];
    row.push_back(1.0);
    for (int a = 0; a < d; ++a) {
      xty[static_cast<std::size_t>(a)] +=
          row[static_cast<std::size_t>(a)] * y[static_cast<std::size_t>(i)];
      for (int b = 0; b < d; ++b)
        xtx[static_cast<std::size_t>(a)][static_cast<std::size_t>(b)] +=
            row[static_cast<std::size_t>(a)] * row[static_cast<std::size_t>(b)];
    }
  }
  for (int a = 0; a < d; ++a) xtx[static_cast<std::size_t>(a)][static_cast<std::size_t>(a)] +=
      ridge_;

  const std::vector<double> w = solve_linear_system(std::move(xtx), std::move(xty));
  coef_.assign(w.begin(), w.end() - 1);
  intercept_ = w.back();
  trained_ = true;
}

double LinearRegression::predict(const std::vector<double>& x) const {
  if (!trained_) throw std::logic_error("LinearRegression::predict before fit");
  if (x.size() != coef_.size())
    throw std::invalid_argument("LinearRegression::predict: dimension mismatch");
  double f = intercept_;
  for (std::size_t k = 0; k < coef_.size(); ++k) f += coef_[k] * x[k];
  return f;
}

std::vector<double> LinearRegression::predict(
    const std::vector<std::vector<double>>& x) const {
  std::vector<double> out;
  out.reserve(x.size());
  for (const auto& row : x) out.push_back(predict(row));
  return out;
}

}  // namespace netcut::ml
