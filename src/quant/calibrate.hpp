// Activation calibration (Section III-B4): run the calibration set through
// the network, observe each node's activation range, and derive per-tensor
// quantization parameters. Two scale-selection policies: full min/max and
// clipped percentile (discarding range outliers loses less information for
// heavy-tailed activations).
#pragma once

#include <map>
#include <vector>

#include "nn/network.hpp"
#include "quant/quantize.hpp"

namespace netcut::quant {

enum class ScalePolicy { kMinMax, kPercentile };

struct CalibrationConfig {
  ScalePolicy policy = ScalePolicy::kPercentile;
  double percentile = 99.5;  // used by kPercentile
};

/// Per-node activation quantization parameters (node id -> params).
using ActivationScales = std::map<int, QuantParams>;

/// Runs every calibration image through the network and derives activation
/// scales for each graph node output (including the input node).
ActivationScales calibrate_activations(nn::Network& net,
                                       const std::vector<const tensor::Tensor*>& images,
                                       const CalibrationConfig& config = {});

}  // namespace netcut::quant
