#include "quant/quantize.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace netcut::quant {

QuantParams QuantParams::from_range(float lo, float hi) {
  if (lo > hi) throw std::invalid_argument("QuantParams: lo > hi");
  // Range must include 0 so that zero maps exactly (padding correctness).
  lo = std::min(lo, 0.0f);
  hi = std::max(hi, 0.0f);
  QuantParams p;
  const float span = hi - lo;
  p.scale = span > 0.0f ? span / 255.0f : 1.0f;
  p.zero_point = static_cast<int>(std::lround(-lo / p.scale));
  p.zero_point = std::clamp(p.zero_point, 0, 255);
  return p;
}

std::uint8_t quantize_value(float x, const QuantParams& p) {
  const long q = std::lround(x / p.scale) + p.zero_point;
  return static_cast<std::uint8_t>(std::clamp(q, 0L, 255L));
}

float dequantize_value(std::uint8_t q, const QuantParams& p) {
  return (static_cast<int>(q) - p.zero_point) * p.scale;
}

std::vector<std::uint8_t> quantize_tensor(const Tensor& x, const QuantParams& p) {
  std::vector<std::uint8_t> out(static_cast<std::size_t>(x.numel()));
  for (std::int64_t i = 0; i < x.numel(); ++i)
    out[static_cast<std::size_t>(i)] = quantize_value(x[i], p);
  return out;
}

Tensor dequantize_tensor(const std::vector<std::uint8_t>& q, const tensor::Shape& shape,
                         const QuantParams& p) {
  if (static_cast<std::int64_t>(q.size()) != shape.numel())
    throw std::invalid_argument("dequantize_tensor: size mismatch");
  Tensor out(shape);
  for (std::int64_t i = 0; i < out.numel(); ++i)
    out[i] = dequantize_value(q[static_cast<std::size_t>(i)], p);
  return out;
}

Tensor fake_quantize(const Tensor& x, const QuantParams& p) {
  Tensor out(x.shape());
  for (std::int64_t i = 0; i < x.numel(); ++i)
    out[i] = dequantize_value(quantize_value(x[i], p), p);
  return out;
}

ChannelQuant quantize_weights_per_channel(const Tensor& w) {
  if (w.shape().rank() < 2)
    throw std::invalid_argument("quantize_weights_per_channel: need >= rank-2 weights");
  const int O = w.shape()[0];
  const std::int64_t per_channel = w.numel() / O;
  ChannelQuant q;
  q.values.resize(static_cast<std::size_t>(w.numel()));
  q.scales.resize(static_cast<std::size_t>(O));
  for (int o = 0; o < O; ++o) {
    const float* src = w.data() + static_cast<std::int64_t>(o) * per_channel;
    float amax = 0.0f;
    for (std::int64_t i = 0; i < per_channel; ++i) amax = std::max(amax, std::abs(src[i]));
    const float scale = amax > 0.0f ? amax / 127.0f : 1.0f;
    q.scales[static_cast<std::size_t>(o)] = scale;
    std::int8_t* dst = q.values.data() + static_cast<std::int64_t>(o) * per_channel;
    for (std::int64_t i = 0; i < per_channel; ++i) {
      const long v = std::lround(src[i] / scale);
      dst[i] = static_cast<std::int8_t>(std::clamp(v, -127L, 127L));
    }
  }
  return q;
}

Tensor dequantize_weights(const ChannelQuant& q, const tensor::Shape& shape) {
  if (static_cast<std::int64_t>(q.values.size()) != shape.numel())
    throw std::invalid_argument("dequantize_weights: size mismatch");
  const int O = shape[0];
  const std::int64_t per_channel = shape.numel() / O;
  Tensor out(shape);
  for (int o = 0; o < O; ++o) {
    const float scale = q.scales[static_cast<std::size_t>(o)];
    for (std::int64_t i = 0; i < per_channel; ++i) {
      const std::int64_t idx = static_cast<std::int64_t>(o) * per_channel + i;
      out[idx] = static_cast<float>(q.values[static_cast<std::size_t>(idx)]) * scale;
    }
  }
  return out;
}

float quantization_error(const Tensor& x, const QuantParams& p) {
  float m = 0.0f;
  for (std::int64_t i = 0; i < x.numel(); ++i)
    m = std::max(m, std::abs(x[i] - dequantize_value(quantize_value(x[i], p), p)));
  return m;
}

}  // namespace netcut::quant
