#include "quant/qnetwork.hpp"

#include <algorithm>
#include <array>
#include <cstring>
#include <stdexcept>

#include "nn/pooling.hpp"
#include "tensor/gemm.hpp"
#include "tensor/im2col.hpp"

namespace netcut::quant {

namespace {

/// Offsets inside the int8 arena are handed out 64-byte aligned so the i32
/// accumulator region is naturally aligned and GEMM panels start on cache
/// lines.
std::size_t align64(std::size_t bytes) { return (bytes + 63) & ~std::size_t{63}; }

/// Per-output-channel sums of the int8 weights. Folding the activation zero
/// point through these is exact: sum (a - zp) * w == sum a*w - zp * sum w
/// in integer arithmetic, so the raw-product s8u8 GEMM loses nothing.
std::vector<std::int32_t> weight_rowsums(const ChannelQuant& qw, int out_channels) {
  std::vector<std::int32_t> sums(static_cast<std::size_t>(out_channels), 0);
  const std::size_t per = qw.values.size() / static_cast<std::size_t>(out_channels);
  for (int o = 0; o < out_channels; ++o) {
    const std::int8_t* row = qw.values.data() + static_cast<std::size_t>(o) * per;
    std::int32_t s = 0;
    for (std::size_t i = 0; i < per; ++i) s += row[i];
    sums[static_cast<std::size_t>(o)] = s;
  }
  return sums;
}

tensor::ConvGeometry conv_geometry(const nn::Conv2D& conv, const tensor::Shape& in) {
  tensor::ConvGeometry geo;
  geo.in_c = in[0];
  geo.in_h = in[1];
  geo.in_w = in[2];
  geo.kernel_h = conv.kernel_h();
  geo.kernel_w = conv.kernel_w();
  geo.stride = conv.stride();
  geo.pad_h = conv.pad_h();
  geo.pad_w = conv.pad_w();
  return geo;
}

/// Requantize raw s8u8 accumulators into the node's uint8 activation slot:
/// float = (acc - zp * rowsum) * (w_scale * in_scale) + bias.
void requantize_rows(const std::int32_t* acc, int rows, int cols, const ChannelQuant& qw,
                     const std::vector<std::int32_t>& rowsums, const QuantParams& in_p,
                     const float* bias, const QuantParams& out_p, std::uint8_t* out) {
  for (int o = 0; o < rows; ++o) {
    const float requant = qw.scales[static_cast<std::size_t>(o)] * in_p.scale;
    const std::int32_t fold = in_p.zero_point * rowsums[static_cast<std::size_t>(o)];
    const float b = bias ? bias[o] : 0.0f;
    const std::int32_t* arow = acc + static_cast<std::int64_t>(o) * cols;
    std::uint8_t* orow = out + static_cast<std::int64_t>(o) * cols;
    for (int j = 0; j < cols; ++j)
      orow[j] = quantize_value(static_cast<float>(arow[j] - fold) * requant + b, out_p);
  }
}

/// 256-entry uint8 -> uint8 requantization table for `f` applied in float.
template <typename F>
std::array<std::uint8_t, 256> requant_lut(const QuantParams& in_p, const QuantParams& out_p,
                                          F&& f) {
  std::array<std::uint8_t, 256> lut{};
  for (int v = 0; v < 256; ++v)
    lut[static_cast<std::size_t>(v)] =
        quantize_value(f(dequantize_value(static_cast<std::uint8_t>(v), in_p)), out_p);
  return lut;
}

}  // namespace

QuantizedNetwork::QuantizedNetwork(nn::Graph fused_graph) : net_(std::move(fused_graph)) {
  // Round-trip every conv/dense weight through per-channel int8 now; the
  // information loss is baked into the stored weights, and the integer form
  // (values + per-channel rowsums) is kept for forward_int8. Quantizing the
  // restored weights is idempotent, so the stored int8 values are exactly
  // what int8_conv2d / int8_dense would re-derive.
  for (int id = 1; id < net_.graph().node_count(); ++id) {
    nn::Layer& layer = *net_.graph().node(id).layer;
    tensor::Tensor* w = nullptr;
    int out_channels = 0;
    switch (layer.kind()) {
      case nn::LayerKind::kConv2D: {
        auto& conv = static_cast<nn::Conv2D&>(layer);
        w = &conv.weight();
        out_channels = conv.out_channels();
        break;
      }
      case nn::LayerKind::kDepthwiseConv2D: {
        auto& conv = static_cast<nn::DepthwiseConv2D&>(layer);
        w = &conv.weight();
        out_channels = conv.channels();
        break;
      }
      case nn::LayerKind::kDense: {
        auto& dense = static_cast<nn::Dense&>(layer);
        w = &dense.weight();
        out_channels = dense.out_features();
        break;
      }
      default: break;
    }
    if (!w) continue;
    ChannelQuant q = quantize_weights_per_channel(*w);
    const tensor::Tensor restored = dequantize_weights(q, w->shape());
    max_weight_error_ = std::max(max_weight_error_, tensor::max_abs_diff(*w, restored));
    *w = restored;
    if (layer.kind() != nn::LayerKind::kDepthwiseConv2D) {
      NodeWeights nw;
      nw.rowsums = weight_rowsums(q, out_channels);
      nw.qw = std::move(q);
      node_weights_.emplace(id, std::move(nw));
    }
  }
}

void QuantizedNetwork::calibrate(const std::vector<const tensor::Tensor*>& images,
                                 const CalibrationConfig& config) {
  scales_ = calibrate_activations(net_, images, config);
}

tensor::Tensor QuantizedNetwork::forward(const tensor::Tensor& input) {
  if (!calibrated()) throw std::logic_error("QuantizedNetwork: calibrate first");
  // Mirror Network::forward but insert an activation round trip after each
  // node ("quantized on the fly per-tensor", Section III-B4).
  nn::Graph& g = net_.graph();
  const int n = g.node_count();
  std::vector<tensor::Tensor> acts(static_cast<std::size_t>(n));
  acts[0] = fake_quantize(input, scales_.at(0));
  for (int id = 1; id < n; ++id) {
    nn::Node& nd = g.node(id);
    std::vector<const tensor::Tensor*> in;
    in.reserve(nd.inputs.size());
    for (int src : nd.inputs) in.push_back(&acts[static_cast<std::size_t>(src)]);
    tensor::Tensor y = nd.layer->forward(in, false);
    acts[static_cast<std::size_t>(id)] = fake_quantize(y, scales_.at(id));
  }
  return acts[static_cast<std::size_t>(n - 1)];
}

void QuantizedNetwork::plan_int8(const tensor::Shape& in_shape) {
  nn::Graph& g = net_.graph();
  const int n = g.node_count();
  Int8Plan plan;
  plan.in_shape = in_shape;
  plan.shapes.resize(static_cast<std::size_t>(n));
  plan.act_offsets.resize(static_cast<std::size_t>(n));
  plan.shapes[0] = in_shape;

  std::size_t bytes = 0;
  std::size_t cols_bytes = 0;
  std::size_t acc_bytes = 0;
  for (int id = 0; id < n; ++id) {
    if (id > 0) {
      const nn::Node& nd = g.node(id);
      std::vector<tensor::Shape> in;
      in.reserve(nd.inputs.size());
      for (int src : nd.inputs) in.push_back(plan.shapes[static_cast<std::size_t>(src)]);
      plan.shapes[static_cast<std::size_t>(id)] = nd.layer->output_shape(in);
    }
    plan.act_offsets[static_cast<std::size_t>(id)] = bytes;
    bytes += align64(static_cast<std::size_t>(plan.shapes[static_cast<std::size_t>(id)].numel()));

    const nn::Node& nd = g.node(id);
    if (id > 0 && nd.layer->kind() == nn::LayerKind::kConv2D) {
      const auto& conv = static_cast<const nn::Conv2D&>(*nd.layer);
      const tensor::ConvGeometry geo =
          conv_geometry(conv, plan.shapes[static_cast<std::size_t>(nd.inputs[0])]);
      const std::size_t pixels =
          static_cast<std::size_t>(geo.out_h()) * static_cast<std::size_t>(geo.out_w());
      cols_bytes = std::max(
          cols_bytes, static_cast<std::size_t>(geo.in_c) * static_cast<std::size_t>(geo.patch()) *
                          pixels);
      acc_bytes = std::max(acc_bytes,
                           static_cast<std::size_t>(conv.out_channels()) * pixels * sizeof(std::int32_t));
    } else if (id > 0 && nd.layer->kind() == nn::LayerKind::kDense) {
      const auto& dense = static_cast<const nn::Dense&>(*nd.layer);
      acc_bytes =
          std::max(acc_bytes, static_cast<std::size_t>(dense.out_features()) * sizeof(std::int32_t));
    }
  }
  plan.cols_offset = bytes;
  bytes += align64(cols_bytes);
  plan.acc_offset = bytes;
  bytes += align64(acc_bytes);
  plan.total_floats = (bytes + sizeof(float) - 1) / sizeof(float);

  int8_arena_.reserve(plan.total_floats);
  int8_plan_ = std::move(plan);
}

tensor::Tensor QuantizedNetwork::forward_int8(const tensor::Tensor& input) {
  if (!calibrated()) throw std::logic_error("QuantizedNetwork: calibrate first");
  if (int8_plan_.shapes.empty() || !(int8_plan_.in_shape == input.shape()))
    plan_int8(input.shape());
  const Int8Plan& plan = int8_plan_;

  nn::Graph& g = net_.graph();
  const int n = g.node_count();
  std::uint8_t* base = reinterpret_cast<std::uint8_t*>(int8_arena_.slot(0));
  const auto act = [&](int id) { return base + plan.act_offsets[static_cast<std::size_t>(id)]; };
  const auto numel = [&](int id) {
    return static_cast<std::size_t>(plan.shapes[static_cast<std::size_t>(id)].numel());
  };

  // Input node: quantize once with the calibrated input params.
  {
    const QuantParams& p0 = scales_.at(0);
    const float* x = input.data();
    std::uint8_t* q = act(0);
    const std::size_t count = numel(0);
    for (std::size_t i = 0; i < count; ++i) q[i] = quantize_value(x[i], p0);
  }

  for (int id = 1; id < n; ++id) {
    const nn::Node& nd = g.node(id);
    const int src0 = nd.inputs.empty() ? 0 : nd.inputs[0];
    const QuantParams& in_p = scales_.at(src0);
    const QuantParams& out_p = scales_.at(id);
    const tensor::Shape& in_shape = plan.shapes[static_cast<std::size_t>(src0)];

    switch (nd.layer->kind()) {
      case nn::LayerKind::kConv2D: {
        const auto& conv = static_cast<const nn::Conv2D&>(*nd.layer);
        const NodeWeights& nw = node_weights_.at(id);
        const tensor::ConvGeometry geo = conv_geometry(conv, in_shape);
        const int pixels = geo.out_h() * geo.out_w();
        const int patch_k = geo.in_c * geo.patch();
        std::uint8_t* cols = base + plan.cols_offset;
        auto* acc = reinterpret_cast<std::int32_t*>(base + plan.acc_offset);
        tensor::im2col_u8(act(src0), geo, cols,
                          static_cast<std::uint8_t>(in_p.zero_point));
        tensor::gemm_s8u8(nw.qw.values.data(), cols, acc, conv.out_channels(), patch_k,
                          pixels);
        requantize_rows(acc, conv.out_channels(), pixels, nw.qw, nw.rowsums, in_p,
                        conv.has_bias() ? conv.bias().data() : nullptr, out_p, act(id));
        break;
      }
      case nn::LayerKind::kDense: {
        const auto& dense = static_cast<const nn::Dense&>(*nd.layer);
        const NodeWeights& nw = node_weights_.at(id);
        auto* acc = reinterpret_cast<std::int32_t*>(base + plan.acc_offset);
        tensor::gemm_s8u8(nw.qw.values.data(), act(src0), acc, dense.out_features(),
                          dense.in_features(), 1);
        requantize_rows(acc, dense.out_features(), 1, nw.qw, nw.rowsums, in_p,
                        dense.has_bias() ? dense.bias().data() : nullptr, out_p, act(id));
        break;
      }
      case nn::LayerKind::kReLU:
      case nn::LayerKind::kReLU6: {
        const bool clip6 = nd.layer->kind() == nn::LayerKind::kReLU6;
        const auto lut = requant_lut(in_p, out_p, [clip6](float v) {
          v = std::max(v, 0.0f);
          return clip6 ? std::min(v, 6.0f) : v;
        });
        const std::uint8_t* x = act(src0);
        std::uint8_t* y = act(id);
        const std::size_t count = numel(id);
        for (std::size_t i = 0; i < count; ++i) y[i] = lut[x[i]];
        break;
      }
      case nn::LayerKind::kFlatten: {
        // Pure relabeling of the same elements; only the calibrated scale
        // changes between the two node outputs.
        const auto lut = requant_lut(in_p, out_p, [](float v) { return v; });
        const std::uint8_t* x = act(src0);
        std::uint8_t* y = act(id);
        const std::size_t count = numel(id);
        for (std::size_t i = 0; i < count; ++i) y[i] = lut[x[i]];
        break;
      }
      case nn::LayerKind::kMaxPool: {
        // uint8 max commutes with dequantization (the affine map is
        // monotonic), so pool in the quantized domain and requantize the
        // winners. Window clamping mirrors Pool2D::forward_into.
        const auto& pool = static_cast<const nn::Pool2D&>(*nd.layer);
        const auto lut = requant_lut(in_p, out_p, [](float v) { return v; });
        const tensor::Shape& os = plan.shapes[static_cast<std::size_t>(id)];
        const int C = in_shape[0], ih = in_shape[1], iw = in_shape[2];
        const int oh = os[1], ow = os[2];
        const int kk = pool.kernel(), st = pool.stride(), pd = pool.pad();
        const std::uint8_t* x = act(src0);
        std::uint8_t* y = act(id);
        for (int c = 0; c < C; ++c) {
          const std::uint8_t* chan = x + static_cast<std::int64_t>(c) * ih * iw;
          std::uint8_t* dst = y + static_cast<std::int64_t>(c) * oh * ow;
          for (int yo = 0; yo < oh; ++yo) {
            const int y0 = std::max(0, yo * st - pd);
            const int y1 = std::min(ih, yo * st - pd + kk);
            for (int xo = 0; xo < ow; ++xo) {
              const int x0 = std::max(0, xo * st - pd);
              const int x1 = std::min(iw, xo * st - pd + kk);
              std::uint8_t best = 0;
              for (int yy = y0; yy < y1; ++yy)
                for (int xx = x0; xx < x1; ++xx)
                  best = std::max(best, chan[yy * iw + xx]);
              dst[yo * ow + xo] = lut[best];
            }
          }
        }
        break;
      }
      default: {
        // Fallback for kinds without a dedicated integer kernel (depthwise,
        // BatchNorm, Add, Concat, pooling averages, Softmax): dequantize the
        // inputs, run the float layer, requantize the output. Heap
        // allocation here mirrors the naive float path; the hot conv/dense
        // nodes above never take it.
        std::vector<tensor::Tensor> fin;
        fin.reserve(nd.inputs.size());
        for (int src : nd.inputs) {
          const QuantParams& p = scales_.at(src);
          tensor::Tensor t(plan.shapes[static_cast<std::size_t>(src)]);
          const std::uint8_t* qd = act(src);
          float* fd = t.data();
          const std::size_t count = static_cast<std::size_t>(t.numel());
          for (std::size_t i = 0; i < count; ++i) fd[i] = dequantize_value(qd[i], p);
          fin.push_back(std::move(t));
        }
        std::vector<const tensor::Tensor*> fin_ptrs;
        fin_ptrs.reserve(fin.size());
        for (const tensor::Tensor& t : fin) fin_ptrs.push_back(&t);
        const tensor::Tensor fy = nd.layer->forward(fin_ptrs, false);
        const float* fd = fy.data();
        std::uint8_t* y = act(id);
        const std::size_t count = numel(id);
        for (std::size_t i = 0; i < count; ++i) y[i] = quantize_value(fd[i], out_p);
        break;
      }
    }
  }

  const int out_id = n - 1;
  const QuantParams& out_p = scales_.at(out_id);
  tensor::Tensor out(plan.shapes[static_cast<std::size_t>(out_id)]);
  const std::uint8_t* q = act(out_id);
  float* f = out.data();
  const std::size_t count = static_cast<std::size_t>(out.numel());
  for (std::size_t i = 0; i < count; ++i) f[i] = dequantize_value(q[i], out_p);
  return out;
}

tensor::Tensor int8_conv2d(const nn::Conv2D& conv, const tensor::Tensor& input,
                           const QuantParams& in_params) {
  const std::vector<std::uint8_t> qin = quantize_tensor(input, in_params);
  const ChannelQuant qw = quantize_weights_per_channel(conv.weight());

  const tensor::ConvGeometry geo = conv_geometry(conv, input.shape());
  const int pixels = geo.out_h() * geo.out_w();
  const int O = conv.out_channels();
  const int K = geo.in_c * geo.patch();

  // Lower to im2col over the quantized image (out-of-bounds taps filled with
  // the zero point, i.e. real 0) and one backend s8u8 GEMM; the zero point
  // folds out of the raw accumulators through the per-channel weight sums.
  std::vector<std::uint8_t> cols(static_cast<std::size_t>(K) *
                                 static_cast<std::size_t>(pixels));
  tensor::im2col_u8(qin.data(), geo, cols.data(),
                    static_cast<std::uint8_t>(in_params.zero_point));
  std::vector<std::int32_t> acc(static_cast<std::size_t>(O) * static_cast<std::size_t>(pixels));
  tensor::gemm_s8u8(qw.values.data(), cols.data(), acc.data(), O, K, pixels);

  const std::vector<std::int32_t> rowsums = weight_rowsums(qw, O);
  tensor::Tensor y(tensor::Shape::chw(O, geo.out_h(), geo.out_w()));
  for (int o = 0; o < O; ++o) {
    const float requant = qw.scales[static_cast<std::size_t>(o)] * in_params.scale;
    const std::int32_t fold = in_params.zero_point * rowsums[static_cast<std::size_t>(o)];
    const float bias = conv.has_bias() ? conv.bias()[o] : 0.0f;
    const std::int32_t* arow = acc.data() + static_cast<std::int64_t>(o) * pixels;
    float* yrow = y.data() + static_cast<std::int64_t>(o) * pixels;
    for (int j = 0; j < pixels; ++j)
      yrow[j] = static_cast<float>(arow[j] - fold) * requant + bias;
  }
  return y;
}

tensor::Tensor int8_dense(const nn::Dense& dense, const tensor::Tensor& input,
                          const QuantParams& in_params) {
  const std::vector<std::uint8_t> qin = quantize_tensor(input, in_params);
  const ChannelQuant qw = quantize_weights_per_channel(dense.weight());
  const int O = dense.out_features();
  const int I = dense.in_features();

  std::vector<std::int32_t> acc(static_cast<std::size_t>(O));
  tensor::gemm_s8u8(qw.values.data(), qin.data(), acc.data(), O, I, 1);
  const std::vector<std::int32_t> rowsums = weight_rowsums(qw, O);

  tensor::Tensor y(tensor::Shape::vec(O));
  for (int o = 0; o < O; ++o) {
    const std::int32_t fold = in_params.zero_point * rowsums[static_cast<std::size_t>(o)];
    y[o] = static_cast<float>(acc[static_cast<std::size_t>(o)] - fold) *
               qw.scales[static_cast<std::size_t>(o)] * in_params.scale +
           (dense.has_bias() ? dense.bias()[o] : 0.0f);
  }
  return y;
}

}  // namespace netcut::quant
