#include "quant/qnetwork.hpp"

#include <algorithm>
#include <stdexcept>

#include "tensor/im2col.hpp"

namespace netcut::quant {

QuantizedNetwork::QuantizedNetwork(nn::Graph fused_graph) : net_(std::move(fused_graph)) {
  // Round-trip every conv/dense weight through per-channel int8 now; the
  // information loss is baked into the stored weights.
  for (int id = 1; id < net_.graph().node_count(); ++id) {
    nn::Layer& layer = *net_.graph().node(id).layer;
    tensor::Tensor* w = nullptr;
    switch (layer.kind()) {
      case nn::LayerKind::kConv2D: w = &static_cast<nn::Conv2D&>(layer).weight(); break;
      case nn::LayerKind::kDepthwiseConv2D:
        w = &static_cast<nn::DepthwiseConv2D&>(layer).weight();
        break;
      case nn::LayerKind::kDense: w = &static_cast<nn::Dense&>(layer).weight(); break;
      default: break;
    }
    if (!w) continue;
    const ChannelQuant q = quantize_weights_per_channel(*w);
    const tensor::Tensor restored = dequantize_weights(q, w->shape());
    max_weight_error_ = std::max(max_weight_error_, tensor::max_abs_diff(*w, restored));
    *w = restored;
  }
}

void QuantizedNetwork::calibrate(const std::vector<const tensor::Tensor*>& images,
                                 const CalibrationConfig& config) {
  scales_ = calibrate_activations(net_, images, config);
}

tensor::Tensor QuantizedNetwork::forward(const tensor::Tensor& input) {
  if (!calibrated()) throw std::logic_error("QuantizedNetwork: calibrate first");
  // Mirror Network::forward but insert an activation round trip after each
  // node ("quantized on the fly per-tensor", Section III-B4).
  nn::Graph& g = net_.graph();
  const int n = g.node_count();
  std::vector<tensor::Tensor> acts(static_cast<std::size_t>(n));
  acts[0] = fake_quantize(input, scales_.at(0));
  for (int id = 1; id < n; ++id) {
    nn::Node& nd = g.node(id);
    std::vector<const tensor::Tensor*> in;
    in.reserve(nd.inputs.size());
    for (int src : nd.inputs) in.push_back(&acts[static_cast<std::size_t>(src)]);
    tensor::Tensor y = nd.layer->forward(in, false);
    acts[static_cast<std::size_t>(id)] = fake_quantize(y, scales_.at(id));
  }
  return acts[static_cast<std::size_t>(n - 1)];
}

tensor::Tensor int8_conv2d(const nn::Conv2D& conv, const tensor::Tensor& input,
                           const QuantParams& in_params) {
  const std::vector<std::uint8_t> qin = quantize_tensor(input, in_params);
  const ChannelQuant qw = quantize_weights_per_channel(conv.weight());

  tensor::ConvGeometry geo;
  geo.in_c = input.shape()[0];
  geo.in_h = input.shape()[1];
  geo.in_w = input.shape()[2];
  geo.kernel_h = conv.kernel_h();
  geo.kernel_w = conv.kernel_w();
  geo.stride = conv.stride();
  geo.pad_h = conv.pad_h();
  geo.pad_w = conv.pad_w();
  const int oh = geo.out_h();
  const int ow = geo.out_w();
  const int O = conv.out_channels();
  const int I = geo.in_c;
  const int kh = geo.kernel_h, kw = geo.kernel_w;

  tensor::Tensor y(tensor::Shape::chw(O, oh, ow));
  // Integer accumulation with the zero-point folded in: for padding to be
  // exact, out-of-bounds taps contribute the zero-point (i.e. real 0).
  for (int o = 0; o < O; ++o) {
    const std::int8_t* w = qw.values.data() + static_cast<std::int64_t>(o) * I * kh * kw;
    const float requant = qw.scales[static_cast<std::size_t>(o)] * in_params.scale;
    const float bias = conv.has_bias() ? conv.bias()[o] : 0.0f;
    for (int yo = 0; yo < oh; ++yo) {
      for (int xo = 0; xo < ow; ++xo) {
        std::int32_t acc = 0;
        for (int i = 0; i < I; ++i) {
          const std::uint8_t* chan =
              qin.data() + static_cast<std::int64_t>(i) * geo.in_h * geo.in_w;
          const std::int8_t* wk = w + static_cast<std::int64_t>(i) * kh * kw;
          for (int r = 0; r < kh; ++r) {
            const int iy = yo * geo.stride + r - geo.pad_h;
            for (int s = 0; s < kw; ++s) {
              const int ix = xo * geo.stride + s - geo.pad_w;
              const std::int32_t a =
                  (iy >= 0 && iy < geo.in_h && ix >= 0 && ix < geo.in_w)
                      ? static_cast<std::int32_t>(chan[iy * geo.in_w + ix])
                      : in_params.zero_point;
              acc += (a - in_params.zero_point) * static_cast<std::int32_t>(wk[r * kw + s]);
            }
          }
        }
        y.at(o, yo, xo) = static_cast<float>(acc) * requant + bias;
      }
    }
  }
  return y;
}

tensor::Tensor int8_dense(const nn::Dense& dense, const tensor::Tensor& input,
                          const QuantParams& in_params) {
  const std::vector<std::uint8_t> qin = quantize_tensor(input, in_params);
  const ChannelQuant qw = quantize_weights_per_channel(dense.weight());
  const int O = dense.out_features();
  const int I = dense.in_features();

  tensor::Tensor y(tensor::Shape::vec(O));
  for (int o = 0; o < O; ++o) {
    const std::int8_t* w = qw.values.data() + static_cast<std::int64_t>(o) * I;
    std::int32_t acc = 0;
    for (int i = 0; i < I; ++i)
      acc += (static_cast<std::int32_t>(qin[static_cast<std::size_t>(i)]) -
              in_params.zero_point) *
             static_cast<std::int32_t>(w[i]);
    y[o] = static_cast<float>(acc) * qw.scales[static_cast<std::size_t>(o)] *
               in_params.scale +
           (dense.has_bias() ? dense.bias()[o] : 0.0f);
  }
  return y;
}

}  // namespace netcut::quant
