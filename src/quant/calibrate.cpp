#include "quant/calibrate.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/stats.hpp"

namespace netcut::quant {

ActivationScales calibrate_activations(nn::Network& net,
                                       const std::vector<const tensor::Tensor*>& images,
                                       const CalibrationConfig& config) {
  if (images.empty()) throw std::invalid_argument("calibrate_activations: no images");
  const int n = net.graph().node_count();
  std::vector<int> all_nodes;
  for (int id = 0; id < n; ++id) all_nodes.push_back(id);

  // Collect per-node sample extrema across the calibration set. For the
  // percentile policy we keep all per-image extrema and clip across them.
  std::vector<std::vector<double>> mins(static_cast<std::size_t>(n));
  std::vector<std::vector<double>> maxs(static_cast<std::size_t>(n));
  for (const tensor::Tensor* img : images) {
    const std::vector<tensor::Tensor> acts = net.forward_collect(*img, all_nodes, false);
    for (int id = 0; id < n; ++id) {
      mins[static_cast<std::size_t>(id)].push_back(acts[static_cast<std::size_t>(id)].min());
      maxs[static_cast<std::size_t>(id)].push_back(acts[static_cast<std::size_t>(id)].max());
    }
  }

  ActivationScales scales;
  for (int id = 0; id < n; ++id) {
    double lo = 0.0, hi = 0.0;
    if (config.policy == ScalePolicy::kMinMax) {
      lo = util::min_of(mins[static_cast<std::size_t>(id)]);
      hi = util::max_of(maxs[static_cast<std::size_t>(id)]);
    } else {
      lo = util::percentile(mins[static_cast<std::size_t>(id)], 100.0 - config.percentile);
      hi = util::percentile(maxs[static_cast<std::size_t>(id)], config.percentile);
    }
    scales[id] = QuantParams::from_range(static_cast<float>(lo), static_cast<float>(hi));
  }
  return scales;
}

}  // namespace netcut::quant
