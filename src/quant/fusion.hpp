// Layer fusion (Section III-B4): BatchNorm folding into the preceding
// convolution. This is the mathematical counterpart of the kernel-level
// fusion the DeviceModel prices — after folding, the BN disappears from the
// graph entirely and the conv's weights absorb the scale/shift:
//     W' = W * gamma / sqrt(var + eps),   b' = beta + (b - mean) * gamma / sqrt(var + eps)
#pragma once

#include "nn/graph.hpp"

namespace netcut::quant {

struct FusionReport {
  int batchnorms_folded = 0;
  int nodes_before = 0;
  int nodes_after = 0;
};

/// Returns a new graph where every BatchNorm whose single producer is a
/// Conv2D / DepthwiseConv2D (and who is that producer's only consumer) has
/// been folded away. Convs gain a bias if they had none. Output is
/// numerically equivalent in inference mode.
nn::Graph fold_batchnorm(const nn::Graph& graph, FusionReport* report = nullptr);

}  // namespace netcut::quant
