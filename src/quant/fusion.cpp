#include "quant/fusion.hpp"

#include <cmath>
#include <memory>
#include <vector>

#include "nn/conv.hpp"
#include "nn/norm.hpp"
#include "nn/verify.hpp"

namespace netcut::quant {

namespace {

/// Scales output channel `o` of a conv weight by `s` and folds the shift
/// into the bias.
void fold_into_conv(nn::Tensor& weight, nn::Tensor& bias, const nn::BatchNorm& bn) {
  const int O = weight.shape()[0];
  const std::int64_t per_channel = weight.numel() / O;
  for (int o = 0; o < O; ++o) {
    const float inv_std = 1.0f / std::sqrt(bn.running_var()[o] + bn.eps());
    const float scale = bn.gamma()[o] * inv_std;
    float* w = weight.data() + static_cast<std::int64_t>(o) * per_channel;
    for (std::int64_t i = 0; i < per_channel; ++i) w[i] *= scale;
    bias[o] = bn.beta()[o] + (bias[o] - bn.running_mean()[o]) * scale;
  }
}

}  // namespace

nn::Graph fold_batchnorm(const nn::Graph& graph, FusionReport* report) {
  const int n = graph.node_count();
  std::vector<int> consumers(static_cast<std::size_t>(n), 0);
  for (int id = 1; id < n; ++id)
    for (int src : graph.node(id).inputs) ++consumers[static_cast<std::size_t>(src)];

  // fold_target[bn_id] = conv node id it folds into, or -1.
  std::vector<int> fold_target(static_cast<std::size_t>(n), -1);
  for (int id = 1; id < n; ++id) {
    const nn::Node& nd = graph.node(id);
    if (nd.layer->kind() != nn::LayerKind::kBatchNorm) continue;
    if (nd.inputs.size() != 1) continue;
    const int producer = nd.inputs[0];
    if (consumers[static_cast<std::size_t>(producer)] != 1) continue;
    const nn::LayerKind pk = graph.node(producer).layer->kind();
    if (pk == nn::LayerKind::kConv2D || pk == nn::LayerKind::kDepthwiseConv2D)
      fold_target[static_cast<std::size_t>(id)] = producer;
  }

  nn::Graph out;
  out.add_input(graph.input_shape());
  std::vector<int> remap(static_cast<std::size_t>(n), -1);
  remap[0] = 0;
  int folded = 0;

  for (int id = 1; id < n; ++id) {
    const nn::Node& nd = graph.node(id);
    if (fold_target[static_cast<std::size_t>(id)] >= 0) {
      // The BN disappears; its output is its (already remapped, already
      // folded) producer conv.
      const int conv_old = fold_target[static_cast<std::size_t>(id)];
      const int conv_new = remap[static_cast<std::size_t>(conv_old)];
      nn::Layer& conv_layer = *out.node(conv_new).layer;
      const auto& bn = static_cast<const nn::BatchNorm&>(*nd.layer);
      if (conv_layer.kind() == nn::LayerKind::kConv2D) {
        auto& conv = static_cast<nn::Conv2D&>(conv_layer);
        if (!conv.has_bias())
          throw std::logic_error("fold_batchnorm: conv rebuilt without bias");
        fold_into_conv(conv.weight(), conv.bias(), bn);
      } else {
        auto& conv = static_cast<nn::DepthwiseConv2D&>(conv_layer);
        if (!conv.has_bias())
          throw std::logic_error("fold_batchnorm: depthwise conv rebuilt without bias");
        fold_into_conv(conv.weight(), conv.bias(), bn);
      }
      remap[static_cast<std::size_t>(id)] = conv_new;
      ++folded;
      continue;
    }

    std::vector<int> inputs;
    inputs.reserve(nd.inputs.size());
    for (int src : nd.inputs) inputs.push_back(remap[static_cast<std::size_t>(src)]);

    std::unique_ptr<nn::Layer> layer;
    const bool will_absorb_bn =
        (nd.layer->kind() == nn::LayerKind::kConv2D ||
         nd.layer->kind() == nn::LayerKind::kDepthwiseConv2D);
    if (will_absorb_bn && nd.layer->kind() == nn::LayerKind::kConv2D) {
      // Rebuild with a bias so a following BN can fold its shift in.
      const auto& conv = static_cast<const nn::Conv2D&>(*nd.layer);
      auto rebuilt = std::make_unique<nn::Conv2D>(conv.in_channels(), conv.out_channels(),
                                                  conv.kernel_h(), conv.kernel_w(),
                                                  conv.stride(), conv.pad_h(), conv.pad_w(),
                                                  /*bias=*/true);
      rebuilt->weight() = conv.weight();
      if (conv.has_bias()) rebuilt->bias() = conv.bias();
      layer = std::move(rebuilt);
    } else if (will_absorb_bn) {
      const auto& conv = static_cast<const nn::DepthwiseConv2D&>(*nd.layer);
      auto rebuilt = std::make_unique<nn::DepthwiseConv2D>(conv.channels(), conv.kernel(),
                                                           conv.stride(), conv.pad(),
                                                           /*bias=*/true);
      rebuilt->weight() = conv.weight();
      if (conv.has_bias()) rebuilt->bias() = const_cast<nn::DepthwiseConv2D&>(conv).bias();
      layer = std::move(rebuilt);
    } else {
      layer = nd.layer->clone();
    }
    remap[static_cast<std::size_t>(id)] =
        out.add(std::move(layer), std::move(inputs), nd.name, nd.block_id, nd.block_name);
  }

  if (report) {
    report->batchnorms_folded = folded;
    report->nodes_before = graph.node_count();
    report->nodes_after = out.node_count();
  }
  // The fold rebuilds the graph through a node remap; lint the result so a
  // remap bug cannot ship a silently corrupt network.
  nn::check_graph(out, "fold_batchnorm");
  return out;
}

}  // namespace netcut::quant
