// Post-training quantization primitives (Section III-B4): weights are
// quantized per-output-channel (symmetric int8, offline), activations
// per-tensor (asymmetric uint8, scales picked from calibration statistics).
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor.hpp"

namespace netcut::quant {

using tensor::Tensor;

/// Asymmetric affine quantization: q = clamp(round(x / scale) + zero_point).
struct QuantParams {
  float scale = 1.0f;
  int zero_point = 0;

  /// Params covering [lo, hi] with uint8 range.
  static QuantParams from_range(float lo, float hi);
};

std::uint8_t quantize_value(float x, const QuantParams& p);
float dequantize_value(std::uint8_t q, const QuantParams& p);

std::vector<std::uint8_t> quantize_tensor(const Tensor& x, const QuantParams& p);
Tensor dequantize_tensor(const std::vector<std::uint8_t>& q, const tensor::Shape& shape,
                         const QuantParams& p);

/// Round trip through uint8 — the "fake quant" operator used to measure
/// deployment accuracy impact on the fp32 execution path.
Tensor fake_quantize(const Tensor& x, const QuantParams& p);

/// Symmetric per-output-channel int8 weight quantization for OIHW / [O, I]
/// weights: one scale per output channel (the paper's per-feature scheme).
struct ChannelQuant {
  std::vector<std::int8_t> values;  // same layout as the weight tensor
  std::vector<float> scales;        // per output channel
};

ChannelQuant quantize_weights_per_channel(const Tensor& w);
Tensor dequantize_weights(const ChannelQuant& q, const tensor::Shape& shape);

/// Max |x_fp32 - dequant(quant(x))| for a round trip.
float quantization_error(const Tensor& x, const QuantParams& p);

}  // namespace netcut::quant
