// Quantized inference paths.
//
//  * QuantizedNetwork: graph-wide simulated-quantization execution — every
//    node's output passes through a calibrated uint8 round trip and all
//    conv/dense weights through a per-channel int8 round trip. Measures the
//    accuracy impact of int8 deployment on any architecture.
//  * int8_conv2d / int8_dense: genuine integer kernels (uint8 activations x
//    int8 weights, int32 accumulators, float requantization) proving the
//    arithmetic the DeviceModel's int8 timing assumes. Unit tests check
//    them against the simulated-quantization reference.
#pragma once

#include <map>

#include "nn/conv.hpp"
#include "nn/dense.hpp"
#include "nn/network.hpp"
#include "quant/calibrate.hpp"

namespace netcut::quant {

class QuantizedNetwork {
 public:
  /// Takes a *fused* inference graph (fold_batchnorm first for best
  /// accuracy), quantizing weights immediately; activation scales come
  /// from calibrate().
  explicit QuantizedNetwork(nn::Graph fused_graph);

  void calibrate(const std::vector<const tensor::Tensor*>& images,
                 const CalibrationConfig& config = {});
  bool calibrated() const { return !scales_.empty(); }

  /// Simulated-quantized forward pass.
  tensor::Tensor forward(const tensor::Tensor& input);

  const nn::Network& network() const { return net_; }
  const ActivationScales& scales() const { return scales_; }

  /// Max per-channel weight quantization error across all layers.
  float max_weight_error() const { return max_weight_error_; }

 private:
  nn::Network net_;  // weights already round-tripped through int8
  ActivationScales scales_;
  float max_weight_error_ = 0.0f;
};

/// Integer convolution: quantizes the input with `in_params`, runs uint8 x
/// int8 -> int32, and returns the float output via requantization scales.
/// Bias is added in float. Matches conv.forward on round-tripped weights to
/// within one activation quantization step.
tensor::Tensor int8_conv2d(const nn::Conv2D& conv, const tensor::Tensor& input,
                           const QuantParams& in_params);

/// Integer dense layer, same contract as int8_conv2d.
tensor::Tensor int8_dense(const nn::Dense& dense, const tensor::Tensor& input,
                          const QuantParams& in_params);

}  // namespace netcut::quant
