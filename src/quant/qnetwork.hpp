// Quantized inference paths.
//
//  * QuantizedNetwork::forward: graph-wide simulated-quantization execution —
//    every node's output passes through a calibrated uint8 round trip and all
//    conv/dense weights through a per-channel int8 round trip. Measures the
//    accuracy impact of int8 deployment on any architecture.
//  * QuantizedNetwork::forward_int8: genuine integer execution. Conv2D lowers
//    to im2col over uint8 activations plus the backend s8u8 GEMM
//    (tensor::gemm_s8u8), Dense to the same GEMM with N = 1; elementwise
//    requantization (ReLU / ReLU6 / MaxPool / Flatten) runs through 256-entry
//    lookup tables; remaining layer kinds dequantize, run the float layer,
//    and requantize. Activations and GEMM scratch live in one reused
//    tensor::Arena laid out once per input shape, so steady-state passes
//    allocate nothing on the integer path.
//  * int8_conv2d / int8_dense: standalone integer kernels (uint8 activations
//    x int8 weights, int32 accumulators, float requantization) proving the
//    arithmetic the DeviceModel's int8 timing assumes. Unit tests check them
//    against the simulated-quantization reference.
#pragma once

#include <cstdint>
#include <map>

#include "nn/conv.hpp"
#include "nn/dense.hpp"
#include "nn/network.hpp"
#include "quant/calibrate.hpp"
#include "tensor/arena.hpp"

namespace netcut::quant {

class QuantizedNetwork {
 public:
  /// Takes a *fused* inference graph (fold_batchnorm first for best
  /// accuracy), quantizing weights immediately; activation scales come
  /// from calibrate().
  explicit QuantizedNetwork(nn::Graph fused_graph);

  void calibrate(const std::vector<const tensor::Tensor*>& images,
                 const CalibrationConfig& config = {});
  bool calibrated() const { return !scales_.empty(); }

  /// Simulated-quantized forward pass (fp32 arithmetic, uint8 round trips).
  tensor::Tensor forward(const tensor::Tensor& input);

  /// Genuine integer forward pass: uint8 activations end to end, int8
  /// weights, int32 accumulators. Returns the dequantized output; agrees
  /// with forward() to within requantization rounding (the integer
  /// accumulation itself is exact). Requires calibrate() first.
  tensor::Tensor forward_int8(const tensor::Tensor& input);

  const nn::Network& network() const { return net_; }
  const ActivationScales& scales() const { return scales_; }

  /// Max per-channel weight quantization error across all layers.
  float max_weight_error() const { return max_weight_error_; }

 private:
  /// Precomputed integer form of one conv/dense node's weights: the int8
  /// values plus per-output-channel weight sums, which fold the activation
  /// zero point out of the raw s8u8 accumulator exactly
  /// (sum (a - zp) * w == sum a*w - zp * sum w in integer arithmetic).
  struct NodeWeights {
    ChannelQuant qw;
    std::vector<std::int32_t> rowsums;  // per output channel
  };

  /// Byte layout of the integer pass for one input shape: a uint8 activation
  /// slot per node plus one shared scratch region (im2col columns + int32
  /// accumulators) sized for the hungriest node. All offsets are 64-byte
  /// aligned inside the float arena.
  struct Int8Plan {
    tensor::Shape in_shape;
    std::vector<tensor::Shape> shapes;        // per-node output shape
    std::vector<std::size_t> act_offsets;     // bytes into the arena
    std::size_t cols_offset = 0;              // shared u8 im2col scratch
    std::size_t acc_offset = 0;               // shared i32 GEMM accumulator
    std::size_t total_floats = 0;
  };

  void plan_int8(const tensor::Shape& in_shape);

  nn::Network net_;  // weights already round-tripped through int8
  ActivationScales scales_;
  float max_weight_error_ = 0.0f;

  std::map<int, NodeWeights> node_weights_;  // conv/dense node id -> int8 form
  Int8Plan int8_plan_;
  tensor::Arena int8_arena_;
};

/// Integer convolution: quantizes the input with `in_params`, lowers to
/// im2col_u8 + tensor::gemm_s8u8 (uint8 x int8 -> int32), and returns the
/// float output via requantization scales. Bias is added in float. Matches
/// conv.forward on round-tripped weights to within one activation
/// quantization step.
tensor::Tensor int8_conv2d(const nn::Conv2D& conv, const tensor::Tensor& input,
                           const QuantParams& in_params);

/// Integer dense layer, same contract as int8_conv2d (s8u8 GEMM with N = 1).
tensor::Tensor int8_dense(const nn::Dense& dense, const tensor::Tensor& input,
                          const QuantParams& in_params);

}  // namespace netcut::quant
