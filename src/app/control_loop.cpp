#include "app/control_loop.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "core/cascade.hpp"
#include "ml/metrics.hpp"

namespace netcut::app {

ControlLoop::ControlLoop(const VisualClassifier& vision, const EmgClassifier& emg,
                         const data::EmgGenerator& emg_gen, double visual_latency_ms,
                         ControlLoopConfig config)
    : ControlLoop({{"", visual_latency_ms, &vision, {}}}, emg, emg_gen, config) {}

ControlLoop::ControlLoop(std::vector<TrnOption> options, const EmgClassifier& emg,
                         const data::EmgGenerator& emg_gen, ControlLoopConfig config,
                         WatchdogConfig watchdog, const hw::FaultModel* faults)
    : options_(std::move(options)),
      emg_(emg),
      emg_gen_(emg_gen),
      config_(config),
      watchdog_(watchdog),
      faults_(faults) {
  if (options_.empty()) throw std::invalid_argument("ControlLoop: no TRN options");
  for (std::size_t i = 0; i < options_.size(); ++i) {
    const TrnOption& o = options_[i];
    if (o.latency_ms <= 0) throw std::invalid_argument("ControlLoop: bad latency");
    if (o.vision == nullptr) throw std::invalid_argument("ControlLoop: null classifier");
    if (o.cascade.enabled) {
      if (o.cascade.escalate_vision == nullptr)
        throw std::invalid_argument("ControlLoop: cascade needs an escalation classifier");
      if (o.cascade.escalate_delta_ms <= 0)
        throw std::invalid_argument("ControlLoop: bad escalation delta");
      if (o.cascade.thresholds.empty())
        throw std::invalid_argument("ControlLoop: cascade needs thresholds");
      for (std::size_t j = 0; j < o.cascade.thresholds.size(); ++j) {
        if (o.cascade.thresholds[j] < 0)
          throw std::invalid_argument("ControlLoop: negative cascade threshold");
        if (j > 0 && o.cascade.thresholds[j] >= o.cascade.thresholds[j - 1])
          throw std::invalid_argument(
              "ControlLoop: cascade thresholds must be strictly decreasing");
      }
      for (std::size_t j = 0; j < o.cascade.thresholds.size(); ++j) ladder_.push_back({i, j});
    } else {
      ladder_.push_back({i, 0});
    }
  }
  if (watchdog_.window <= 0) throw std::invalid_argument("ControlLoop: bad watchdog window");
}

double ControlLoop::rung_nominal_ms(std::size_t r) const {
  const auto& [opt, thr] = ladder_[r];
  const TrnOption& o = options_[opt];
  if (o.cascade.enabled && o.cascade.thresholds[thr] > 0)
    return o.latency_ms + o.cascade.escalate_delta_ms;
  return o.latency_ms;
}

ControlLoopReport ControlLoop::run(const data::HandsDataset& dataset) {
  util::Rng rng(util::derive_seed(config_.seed, "control-loop"));
  ControlLoopReport report;

  const double decision_time = config_.reach_duration_ms - config_.actuation_time_ms;
  int total_frames = 0, total_missed = 0;
  int correct = 0;
  double sim_sum = 0.0;

  // Device degradation schedule. The stream has its own RNG, so the frame
  // RNG below draws in exactly the legacy order whether or not faults are
  // active — fault injection never perturbs which images an episode sees.
  const hw::FaultModel& fault_model = faults_ ? *faults_ : hw::FaultModel::global();
  hw::FaultStream fault_stream;
  if (fault_model.active()) fault_stream = fault_model.stream("control-loop");

  // Watchdog policy; persists across episodes (the device does not cool
  // down because a reach ended). It walks the expanded fallback ladder:
  // threshold rungs within an option first, then the next TRN.
  MissRateWatchdog watchdog(watchdog_, ladder_.size());
  const bool adaptive = watchdog.adaptive();
  int global_frame = 0;
  // Observed device slowdown: EWMA of (frame latency / nominal latency).
  // Late frames still yield a timing; only outright failed runs do not.
  double slowdown = 1.0;
  constexpr double kSlowdownAlpha = 0.1;
  // Miss rates bracketing the first fallback, for the degradation report.
  bool fell_back = false;
  int pre_frames = 0, pre_missed = 0, post_frames = 0, post_missed = 0;

  // Test images grouped by primary grasp so each episode can stream frames
  // of its intent object.
  std::vector<std::vector<const data::Sample*>> by_class(data::kGraspCount);
  for (const data::Sample& s : dataset.test())
    by_class[static_cast<std::size_t>(static_cast<int>(s.primary))].push_back(&s);
  for (const auto& v : by_class)
    if (v.empty()) throw std::invalid_argument("ControlLoop: test split missing a class");

  for (int ep = 0; ep < config_.episodes; ++ep) {
    EpisodeResult er;
    er.intent = static_cast<data::GraspType>(ep % data::kGraspCount);
    const auto& pool = by_class[static_cast<std::size_t>(static_cast<int>(er.intent))];

    EvidenceAccumulator acc(data::kGraspCount);
    for (double t = 0.0; t <= decision_time; t += config_.frame_period_ms) {
      // Visual frame: random test image of the intent object.
      const data::Sample& frame =
          *pool[static_cast<std::size_t>(rng.uniform_int(0, static_cast<int>(pool.size()) - 1))];
      ++total_frames;

      const std::size_t cur = watchdog.current();
      const std::size_t opt_i = ladder_[cur].first;
      const TrnOption& opt = options_[opt_i];

      // Cascade rung: stage-1 prediction first, escalate when the margin is
      // below the rung's threshold AND the nominal (pre-jitter) two-stage
      // time still fits the frame deadline — the serving layer's slack rule.
      tensor::Tensor stage1;
      bool escalated = false;
      if (opt.cascade.enabled) {
        stage1 = opt.vision->predict(frame.image);
        escalated = core::softmax_margin(stage1) < opt.cascade.thresholds[ladder_[cur].second] &&
                    opt.latency_ms + opt.cascade.escalate_delta_ms <=
                        config_.classifier_deadline_ms;
      }

      // Per-frame latency jitter around the measured device latency, scaled
      // by whatever the fault schedule is doing to the device right now. A
      // failed run means the frame produced no usable inference at all. An
      // escalation charges its delta under the *same* realized jitter and
      // fault multiplier — no extra RNG draws, so the frame stream stays
      // aligned with cascade-free configurations.
      const double jitter = rng.lognormal(0.0, 0.015);
      double latency = opt.latency_ms * jitter;
      hw::RunFault fault;
      if (fault_stream.active()) fault = fault_stream.next(global_frame);
      latency *= fault.multiplier;
      if (escalated) latency += opt.cascade.escalate_delta_ms * jitter * fault.multiplier;
      const double nominal =
          opt.latency_ms + (escalated ? opt.cascade.escalate_delta_ms : 0.0);
      if (!fault.failed) slowdown += kSlowdownAlpha * (latency / nominal - slowdown);
      const bool missed = fault.failed || latency > config_.classifier_deadline_ms;
      if (escalated) ++report.frames_escalated;
      if (missed) {
        ++er.frames_missed;
        ++total_missed;
      } else {
        if (opt.cascade.enabled)
          acc.observe(escalated ? opt.cascade.escalate_vision->predict(frame.image)
                                : stage1,
                      config_.vision_weight);
        else
          acc.observe(opt.vision->predict(frame.image), config_.vision_weight);
        ++er.frames_used;
      }
      if (fell_back) {
        ++post_frames;
        post_missed += missed ? 1 : 0;
      } else {
        ++pre_frames;
        pre_missed += missed ? 1 : 0;
      }

      // EMG window for the same intent arrives every frame.
      acc.observe(emg_.predict(emg_gen_.sample(er.intent, rng)), config_.emg_weight);

      if (adaptive) {
        // The watchdog owns the window/hysteresis policy; the loop supplies
        // the one fact only it knows — whether the next-slower rung (a more
        // permissive threshold, or the next TRN up) is predicted to fit the
        // deadline under the observed slowdown.
        const bool slower_fits =
            cur > 0 && rung_nominal_ms(cur - 1) * slowdown <=
                           watchdog_.recover_headroom * config_.classifier_deadline_ms;
        const MissRateWatchdog::Decision dec = watchdog.observe(missed, slower_fits);
        if (dec.action == MissRateWatchdog::Action::kFallBack) {
          report.switches.push_back({ep, t, cur, cur + 1, dec.window_miss_rate});
          fell_back = true;
        } else if (dec.action == MissRateWatchdog::Action::kRecover) {
          report.switches.push_back({ep, t, cur, cur - 1, dec.window_miss_rate});
        }
      }
      ++global_frame;
    }

    er.decision = acc.decision();
    tensor::Tensor intent_label = data::make_label(er.intent, rng, 0.0);
    er.angular_similarity = ml::angular_similarity(er.decision, intent_label);
    int pred_top1 = 0, true_top1 = 0;
    for (int c = 1; c < data::kGraspCount; ++c) {
      if (er.decision[c] > er.decision[pred_top1]) pred_top1 = c;
      if (intent_label[c] > intent_label[true_top1]) true_top1 = c;
    }
    er.top1_correct = pred_top1 == true_top1;
    if (er.top1_correct) ++correct;
    sim_sum += er.angular_similarity;
    report.episodes.push_back(std::move(er));
  }

  const double n = static_cast<double>(report.episodes.size());
  report.mean_angular_similarity = sim_sum / n;
  report.top1_accuracy = static_cast<double>(correct) / n;
  report.deadline_miss_rate =
      total_frames > 0 ? static_cast<double>(total_missed) / total_frames : 0.0;
  double frames = 0.0;
  for (const EpisodeResult& er : report.episodes) frames += er.frames_used;
  report.mean_frames_used = frames / n;
  report.final_rung = watchdog.current();
  report.final_option = ladder_[report.final_rung].first;
  report.pre_fallback_miss_rate =
      pre_frames > 0 ? static_cast<double>(pre_missed) / pre_frames : 0.0;
  report.post_fallback_miss_rate =
      post_frames > 0 ? static_cast<double>(post_missed) / post_frames
                      : report.pre_fallback_miss_rate;
  return report;
}

}  // namespace netcut::app
