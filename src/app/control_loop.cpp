#include "app/control_loop.hpp"

#include <stdexcept>

#include "ml/metrics.hpp"

namespace netcut::app {

ControlLoop::ControlLoop(const VisualClassifier& vision, const EmgClassifier& emg,
                         const data::EmgGenerator& emg_gen, double visual_latency_ms,
                         ControlLoopConfig config)
    : vision_(vision),
      emg_(emg),
      emg_gen_(emg_gen),
      visual_latency_ms_(visual_latency_ms),
      config_(config) {
  if (visual_latency_ms <= 0) throw std::invalid_argument("ControlLoop: bad latency");
}

ControlLoopReport ControlLoop::run(const data::HandsDataset& dataset) {
  util::Rng rng(util::derive_seed(config_.seed, "control-loop"));
  ControlLoopReport report;

  const double decision_time = config_.reach_duration_ms - config_.actuation_time_ms;
  int total_frames = 0, total_missed = 0;
  int correct = 0;
  double sim_sum = 0.0;

  // Test images grouped by primary grasp so each episode can stream frames
  // of its intent object.
  std::vector<std::vector<const data::Sample*>> by_class(data::kGraspCount);
  for (const data::Sample& s : dataset.test())
    by_class[static_cast<std::size_t>(static_cast<int>(s.primary))].push_back(&s);
  for (const auto& v : by_class)
    if (v.empty()) throw std::invalid_argument("ControlLoop: test split missing a class");

  for (int ep = 0; ep < config_.episodes; ++ep) {
    EpisodeResult er;
    er.intent = static_cast<data::GraspType>(ep % data::kGraspCount);
    const auto& pool = by_class[static_cast<std::size_t>(static_cast<int>(er.intent))];

    EvidenceAccumulator acc(data::kGraspCount);
    for (double t = 0.0; t <= decision_time; t += config_.frame_period_ms) {
      // Visual frame: random test image of the intent object.
      const data::Sample& frame =
          *pool[static_cast<std::size_t>(rng.uniform_int(0, static_cast<int>(pool.size()) - 1))];
      ++total_frames;

      // Per-frame latency jitter around the measured device latency.
      const double latency = visual_latency_ms_ * rng.lognormal(0.0, 0.015);
      if (latency > config_.classifier_deadline_ms) {
        ++er.frames_missed;
        ++total_missed;
      } else {
        acc.observe(vision_.predict(frame.image), config_.vision_weight);
        ++er.frames_used;
      }

      // EMG window for the same intent arrives every frame.
      acc.observe(emg_.predict(emg_gen_.sample(er.intent, rng)), config_.emg_weight);
    }

    er.decision = acc.decision();
    tensor::Tensor intent_label = data::make_label(er.intent, rng, 0.0);
    er.angular_similarity = ml::angular_similarity(er.decision, intent_label);
    int pred_top1 = 0, true_top1 = 0;
    for (int c = 1; c < data::kGraspCount; ++c) {
      if (er.decision[c] > er.decision[pred_top1]) pred_top1 = c;
      if (intent_label[c] > intent_label[true_top1]) true_top1 = c;
    }
    er.top1_correct = pred_top1 == true_top1;
    if (er.top1_correct) ++correct;
    sim_sum += er.angular_similarity;
    report.episodes.push_back(std::move(er));
  }

  const double n = static_cast<double>(report.episodes.size());
  report.mean_angular_similarity = sim_sum / n;
  report.top1_accuracy = static_cast<double>(correct) / n;
  report.deadline_miss_rate =
      total_frames > 0 ? static_cast<double>(total_missed) / total_frames : 0.0;
  double frames = 0.0;
  for (const EpisodeResult& er : report.episodes) frames += er.frames_used;
  report.mean_frames_used = frames / n;
  return report;
}

}  // namespace netcut::app
