#include "app/control_loop.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "ml/metrics.hpp"

namespace netcut::app {

ControlLoop::ControlLoop(const VisualClassifier& vision, const EmgClassifier& emg,
                         const data::EmgGenerator& emg_gen, double visual_latency_ms,
                         ControlLoopConfig config)
    : ControlLoop({{"", visual_latency_ms, &vision}}, emg, emg_gen, config) {}

ControlLoop::ControlLoop(std::vector<TrnOption> options, const EmgClassifier& emg,
                         const data::EmgGenerator& emg_gen, ControlLoopConfig config,
                         WatchdogConfig watchdog, const hw::FaultModel* faults)
    : options_(std::move(options)),
      emg_(emg),
      emg_gen_(emg_gen),
      config_(config),
      watchdog_(watchdog),
      faults_(faults) {
  if (options_.empty()) throw std::invalid_argument("ControlLoop: no TRN options");
  for (const TrnOption& o : options_) {
    if (o.latency_ms <= 0) throw std::invalid_argument("ControlLoop: bad latency");
    if (o.vision == nullptr) throw std::invalid_argument("ControlLoop: null classifier");
  }
  if (watchdog_.window <= 0) throw std::invalid_argument("ControlLoop: bad watchdog window");
}

ControlLoopReport ControlLoop::run(const data::HandsDataset& dataset) {
  util::Rng rng(util::derive_seed(config_.seed, "control-loop"));
  ControlLoopReport report;

  const double decision_time = config_.reach_duration_ms - config_.actuation_time_ms;
  int total_frames = 0, total_missed = 0;
  int correct = 0;
  double sim_sum = 0.0;

  // Device degradation schedule. The stream has its own RNG, so the frame
  // RNG below draws in exactly the legacy order whether or not faults are
  // active — fault injection never perturbs which images an episode sees.
  const hw::FaultModel& fault_model = faults_ ? *faults_ : hw::FaultModel::global();
  hw::FaultStream fault_stream;
  if (fault_model.active()) fault_stream = fault_model.stream("control-loop");

  // Watchdog state; persists across episodes (the device does not cool down
  // because a reach ended).
  const bool adaptive = watchdog_.enabled && options_.size() > 1;
  std::size_t cur = 0;
  std::vector<char> window(static_cast<std::size_t>(watchdog_.window), 0);
  int win_count = 0, win_pos = 0, win_miss = 0;
  int frames_since_switch = watchdog_.cooldown_frames;  // first breach acts at once
  int calm_streak = 0;
  int global_frame = 0;
  // Observed device slowdown: EWMA of (frame latency / nominal latency).
  // Late frames still yield a timing; only outright failed runs do not.
  double slowdown = 1.0;
  constexpr double kSlowdownAlpha = 0.1;
  // Miss rates bracketing the first fallback, for the degradation report.
  bool fell_back = false;
  int pre_frames = 0, pre_missed = 0, post_frames = 0, post_missed = 0;

  // Test images grouped by primary grasp so each episode can stream frames
  // of its intent object.
  std::vector<std::vector<const data::Sample*>> by_class(data::kGraspCount);
  for (const data::Sample& s : dataset.test())
    by_class[static_cast<std::size_t>(static_cast<int>(s.primary))].push_back(&s);
  for (const auto& v : by_class)
    if (v.empty()) throw std::invalid_argument("ControlLoop: test split missing a class");

  for (int ep = 0; ep < config_.episodes; ++ep) {
    EpisodeResult er;
    er.intent = static_cast<data::GraspType>(ep % data::kGraspCount);
    const auto& pool = by_class[static_cast<std::size_t>(static_cast<int>(er.intent))];

    EvidenceAccumulator acc(data::kGraspCount);
    for (double t = 0.0; t <= decision_time; t += config_.frame_period_ms) {
      // Visual frame: random test image of the intent object.
      const data::Sample& frame =
          *pool[static_cast<std::size_t>(rng.uniform_int(0, static_cast<int>(pool.size()) - 1))];
      ++total_frames;

      // Per-frame latency jitter around the measured device latency, scaled
      // by whatever the fault schedule is doing to the device right now. A
      // failed run means the frame produced no usable inference at all.
      double latency = options_[cur].latency_ms * rng.lognormal(0.0, 0.015);
      hw::RunFault fault;
      if (fault_stream.active()) fault = fault_stream.next(global_frame);
      latency *= fault.multiplier;
      if (!fault.failed)
        slowdown += kSlowdownAlpha * (latency / options_[cur].latency_ms - slowdown);
      const bool missed = fault.failed || latency > config_.classifier_deadline_ms;
      if (missed) {
        ++er.frames_missed;
        ++total_missed;
      } else {
        acc.observe(options_[cur].vision->predict(frame.image), config_.vision_weight);
        ++er.frames_used;
      }
      if (fell_back) {
        ++post_frames;
        post_missed += missed ? 1 : 0;
      } else {
        ++pre_frames;
        pre_missed += missed ? 1 : 0;
      }

      // EMG window for the same intent arrives every frame.
      acc.observe(emg_.predict(emg_gen_.sample(er.intent, rng)), config_.emg_weight);

      if (adaptive) {
        // Slide the window, then act on it once it is full.
        win_miss += (missed ? 1 : 0) - window[static_cast<std::size_t>(win_pos)];
        window[static_cast<std::size_t>(win_pos)] = missed ? 1 : 0;
        win_pos = (win_pos + 1) % watchdog_.window;
        win_count = std::min(win_count + 1, watchdog_.window);
        ++frames_since_switch;
        if (win_count == watchdog_.window) {
          const double miss_rate =
              static_cast<double>(win_miss) / static_cast<double>(watchdog_.window);
          const bool cooled = frames_since_switch >= watchdog_.cooldown_frames;
          if (miss_rate >= watchdog_.breach_miss_rate && cur + 1 < options_.size() && cooled) {
            report.switches.push_back({ep, t, cur, cur + 1, miss_rate});
            ++cur;
            fell_back = true;
            win_count = win_miss = win_pos = 0;
            std::fill(window.begin(), window.end(), 0);
            frames_since_switch = 0;
            calm_streak = 0;
          } else if (cur > 0) {
            // Step back up only when the current window is calm AND the
            // slower TRN is predicted to fit the deadline under the
            // observed slowdown — otherwise a sustained throttle would
            // cause an up/down flap on every patience period.
            const bool calm =
                miss_rate <= watchdog_.recover_miss_rate &&
                options_[cur - 1].latency_ms * slowdown <=
                    watchdog_.recover_headroom * config_.classifier_deadline_ms;
            calm_streak = calm ? calm_streak + 1 : 0;
            if (calm_streak >= watchdog_.recover_patience && cooled) {
              report.switches.push_back({ep, t, cur, cur - 1, miss_rate});
              --cur;
              win_count = win_miss = win_pos = 0;
              std::fill(window.begin(), window.end(), 0);
              frames_since_switch = 0;
              calm_streak = 0;
            }
          }
        }
      }
      ++global_frame;
    }

    er.decision = acc.decision();
    tensor::Tensor intent_label = data::make_label(er.intent, rng, 0.0);
    er.angular_similarity = ml::angular_similarity(er.decision, intent_label);
    int pred_top1 = 0, true_top1 = 0;
    for (int c = 1; c < data::kGraspCount; ++c) {
      if (er.decision[c] > er.decision[pred_top1]) pred_top1 = c;
      if (intent_label[c] > intent_label[true_top1]) true_top1 = c;
    }
    er.top1_correct = pred_top1 == true_top1;
    if (er.top1_correct) ++correct;
    sim_sum += er.angular_similarity;
    report.episodes.push_back(std::move(er));
  }

  const double n = static_cast<double>(report.episodes.size());
  report.mean_angular_similarity = sim_sum / n;
  report.top1_accuracy = static_cast<double>(correct) / n;
  report.deadline_miss_rate =
      total_frames > 0 ? static_cast<double>(total_missed) / total_frames : 0.0;
  double frames = 0.0;
  for (const EpisodeResult& er : report.episodes) frames += er.frames_used;
  report.mean_frames_used = frames / n;
  report.final_option = cur;
  report.pre_fallback_miss_rate =
      pre_frames > 0 ? static_cast<double>(pre_missed) / pre_frames : 0.0;
  report.post_fallback_miss_rate =
      post_frames > 0 ? static_cast<double>(post_missed) / post_frames
                      : report.pre_fallback_miss_rate;
  return report;
}

}  // namespace netcut::app
