#include "app/fusion.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace netcut::app {

tensor::Tensor fuse(const std::vector<tensor::Tensor>& distributions,
                    const std::vector<double>& weights) {
  if (distributions.empty() || distributions.size() != weights.size())
    throw std::invalid_argument("fuse: bad inputs");
  EvidenceAccumulator acc(static_cast<int>(distributions[0].numel()));
  for (std::size_t i = 0; i < distributions.size(); ++i)
    acc.observe(distributions[i], weights[i]);
  return acc.decision();
}

EvidenceAccumulator::EvidenceAccumulator(int classes)
    : classes_(classes), log_evidence_(static_cast<std::size_t>(classes), 0.0) {
  if (classes <= 0) throw std::invalid_argument("EvidenceAccumulator: bad class count");
}

void EvidenceAccumulator::observe(const tensor::Tensor& distribution, double weight) {
  if (distribution.numel() != classes_)
    throw std::invalid_argument("EvidenceAccumulator::observe: class count mismatch");
  for (int c = 0; c < classes_; ++c)
    log_evidence_[static_cast<std::size_t>(c)] +=
        weight * std::log(static_cast<double>(distribution[c]) + 1e-9);
  ++observations_;
}

tensor::Tensor EvidenceAccumulator::decision() const {
  tensor::Tensor out(tensor::Shape::vec(classes_));
  if (observations_ == 0) {
    out.fill(1.0f / static_cast<float>(classes_));
    return out;
  }
  const double m = *std::max_element(log_evidence_.begin(), log_evidence_.end());
  double z = 0.0;
  for (int c = 0; c < classes_; ++c) {
    const double e = std::exp(log_evidence_[static_cast<std::size_t>(c)] - m);
    out[c] = static_cast<float>(e);
    z += e;
  }
  for (int c = 0; c < classes_; ++c) out[c] = static_cast<float>(out[c] / z);
  return out;
}

void EvidenceAccumulator::reset() {
  observations_ = 0;
  std::fill(log_evidence_.begin(), log_evidence_.end(), 0.0);
}

}  // namespace netcut::app
