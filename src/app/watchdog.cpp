#include "app/watchdog.hpp"

#include <algorithm>
#include <stdexcept>

namespace netcut::app {

MissRateWatchdog::MissRateWatchdog(WatchdogConfig config, std::size_t option_count)
    : config_(config),
      option_count_(option_count),
      window_(config.window > 0 ? static_cast<std::size_t>(config.window) : 0, 0),
      frames_since_switch_(config.cooldown_frames) {
  if (config_.window <= 0) throw std::invalid_argument("MissRateWatchdog: bad window");
  if (option_count_ == 0) throw std::invalid_argument("MissRateWatchdog: no options");
}

void MissRateWatchdog::reset_window() {
  win_count_ = win_miss_ = win_pos_ = 0;
  std::fill(window_.begin(), window_.end(), 0);
  frames_since_switch_ = 0;
  calm_streak_ = 0;
}

bool MissRateWatchdog::note_capacity_loss() {
  util::MutexLock lock(mu_);
  if (!config_.enabled || current_ + 1 >= option_count_) return false;
  ++current_;
  reset_window();
  return true;
}

MissRateWatchdog::Decision MissRateWatchdog::observe(bool missed, bool slower_fits) {
  util::MutexLock lock(mu_);
  Decision d;
  // Slide the window, then act on it once it is full.
  win_miss_ += (missed ? 1 : 0) - window_[static_cast<std::size_t>(win_pos_)];
  window_[static_cast<std::size_t>(win_pos_)] = missed ? 1 : 0;
  win_pos_ = (win_pos_ + 1) % config_.window;
  win_count_ = std::min(win_count_ + 1, config_.window);
  ++frames_since_switch_;
  if (win_count_ != config_.window) return d;

  const double miss_rate = static_cast<double>(win_miss_) / static_cast<double>(config_.window);
  d.window_miss_rate = miss_rate;
  const bool cooled = frames_since_switch_ >= config_.cooldown_frames;
  if (miss_rate >= config_.breach_miss_rate && current_ + 1 < option_count_ && cooled) {
    ++current_;
    reset_window();
    d.action = Action::kFallBack;
  } else if (current_ > 0) {
    // Step back up only when the current window is calm AND the slower
    // option is predicted to fit — otherwise a sustained throttle would
    // cause an up/down flap on every patience period.
    const bool calm = miss_rate <= config_.recover_miss_rate && slower_fits;
    calm_streak_ = calm ? calm_streak_ + 1 : 0;
    if (calm_streak_ >= config_.recover_patience && cooled) {
      --current_;
      reset_window();
      d.action = Action::kRecover;
    }
  }
  return d;
}

}  // namespace netcut::app
