// Trainable soft-label classifiers for the robotic hand's two sensing
// paths: a small MLP over feature vectors (the EMG path and TRN heads) and
// a visual classifier that pairs a frozen pseudo-pretrained trunk with a
// retrained head — the deployable counterpart of core::TrnEvaluator's
// accuracy protocol.
#pragma once

#include <memory>
#include <vector>

#include "data/emg.hpp"
#include "data/hands.hpp"
#include "data/pretrained.hpp"
#include "nn/network.hpp"
#include "zoo/zoo.hpp"

namespace netcut::app {

struct MlpConfig {
  int hidden1 = 32;
  int hidden2 = 16;
  int classes = 5;
  int epochs = 30;
  double learning_rate = 1e-3;
  std::uint64_t seed = 7;
};

/// MLP emitting a probability distribution over grasp types. Trains on
/// (feature vector, soft label) pairs with soft-target cross-entropy.
class SoftClassifier {
 public:
  SoftClassifier(int features, MlpConfig config);

  void fit(const std::vector<tensor::Tensor>& x, const std::vector<tensor::Tensor>& y);
  /// Softmax probabilities.
  tensor::Tensor predict(const tensor::Tensor& x) const;

  bool trained() const { return trained_; }
  int features() const { return features_; }

 private:
  tensor::Tensor standardize(const tensor::Tensor& x) const;

  int features_;
  MlpConfig config_;
  std::unique_ptr<nn::Network> net_;
  std::vector<float> mean_, stdev_;
  bool trained_ = false;
};

/// The EMG intent classifier of Fig 2: SoftClassifier over 8-channel
/// synthetic EMG features.
class EmgClassifier {
 public:
  EmgClassifier(const data::EmgGenerator& generator, int train_samples, MlpConfig config);

  tensor::Tensor predict(const tensor::Tensor& emg_features) const { return mlp_.predict(emg_features); }
  double test_accuracy(const data::EmgGenerator& generator, int samples,
                       std::uint64_t seed) const;

 private:
  SoftClassifier mlp_;
};

/// The visual grasp classifier: frozen trunk prefix (cut at a TRN cut site)
/// + retrained head. Runs real inference on images.
class VisualClassifier {
 public:
  /// Builds the trunk at the dataset resolution with pseudo-pretrained
  /// weights (loaded from `weight_cache_dir` when available), calibrates
  /// batch norms, and trains the head on the dataset's train split.
  VisualClassifier(zoo::NetId base, int cut_node, const data::HandsDataset& dataset,
                   MlpConfig head_config, const data::PretrainedConfig& pretrained,
                   const std::string& weight_cache_dir = "netcut_weights");

  tensor::Tensor predict(const tensor::Tensor& image) const;
  double test_accuracy(const data::HandsDataset& dataset) const;

  zoo::NetId base() const { return base_; }
  int cut_node() const { return cut_node_; }

 private:
  tensor::Tensor features(const tensor::Tensor& image) const;

  zoo::NetId base_;
  int cut_node_;
  std::unique_ptr<nn::Network> trunk_;
  std::unique_ptr<SoftClassifier> head_;
};

}  // namespace netcut::app
