// MissRateWatchdog: the deadline-breach policy shared by the prosthetic
// control loop and the batched serving layer.
//
// It tracks deadline misses over a sliding window of recent work items.
// When the window's miss rate breaches a threshold it falls back one step
// along a Pareto front of TRN options (preferred/slowest first, fastest
// last); when the window stays calm long enough — and the caller reports
// that the slower option is predicted to fit again — it steps back up.
// Cooldown plus a recovery-patience hysteresis keep it from flapping
// between neighbouring options.
//
// The class is pure policy: it never touches a clock or a network. The
// caller reports one (missed, slower_fits) observation per work item and
// acts on the returned decision. This is exactly the state machine that
// lived inline in ControlLoop::run; the factoring is bit-identical.
#pragma once

#include <cstddef>
#include <vector>

#include "util/ranked_mutex.hpp"
#include "util/thread_annotations.hpp"

namespace netcut::app {

struct WatchdogConfig {
  bool enabled = true;
  int window = 16;                  // sliding window of recent work items
  double breach_miss_rate = 0.50;   // fall back when window miss rate >= this
  double recover_miss_rate = 0.10;  // calm threshold for stepping back up
  int cooldown_frames = 32;         // min items between consecutive switches
  int recover_patience = 48;        // consecutive calm items before recovery
  /// Stepping back up additionally requires the slower TRN's predicted
  /// latency — its nominal latency times the observed device slowdown — to
  /// fit within this fraction of the deadline. This is what prevents
  /// flapping: under a sustained throttle the window looks calm (the fast
  /// fallback is fine) but the slower network still would not fit. The
  /// caller owns that prediction and passes the verdict as `slower_fits`.
  double recover_headroom = 0.98;
};

class MissRateWatchdog {
 public:
  enum class Action { kStay, kFallBack, kRecover };

  struct Decision {
    Action action = Action::kStay;
    double window_miss_rate = 0.0;  // valid once the window has filled
  };

  /// `option_count` is the length of the Pareto front being walked.
  MissRateWatchdog(WatchdogConfig config, std::size_t option_count);

  /// False when disabled or there is nothing to fall back to; callers skip
  /// observe() entirely then (current() stays 0), matching the legacy
  /// single-classifier loop bit-for-bit.
  bool adaptive() const { return config_.enabled && option_count_ > 1; }

  /// Index into the Pareto front currently in service (0 = preferred).
  /// Safe from any thread: the window state is mutex-guarded, so live
  /// reporting (fleet dashboards) may race the serving thread's observe().
  std::size_t current() const {
    util::MutexLock lock(mu_);
    return current_;
  }

  /// Miss rate over the observations currently in the sliding window
  /// (0 while the window is empty, e.g. right after a switch). A live
  /// health signal for dashboards/fleet reports; decisions still act only
  /// on full windows.
  double window_miss_rate() const {
    util::MutexLock lock(mu_);
    return win_count_ > 0 ? static_cast<double>(win_miss_) / static_cast<double>(win_count_)
                          : 0.0;
  }

  const WatchdogConfig& config() const { return config_; }

  /// Record one work item. `missed` is whether it blew its deadline;
  /// `slower_fits` is the caller's prediction that the next-slower option
  /// would meet the deadline under the observed device slowdown (only
  /// consulted while current() > 0). Acts at most one step per call.
  Decision observe(bool missed, bool slower_fits);

  /// External capacity-loss signal (a fleet replica died and this server
  /// must absorb its load): fall back one step *now*, without waiting for
  /// the window to fill with misses. Bypasses the cooldown — the signal is
  /// a hard fact, not a noisy miss-rate estimate — but resets the window
  /// and streaks, so stepping back up still takes the full recovery
  /// patience (no flap when replicas churn). Returns true when a step was
  /// taken (false when disabled or already at the fastest option).
  bool note_capacity_loss();

 private:
  void reset_window() NETCUT_REQUIRES(mu_);

  WatchdogConfig config_;       // immutable after construction
  std::size_t option_count_;    // immutable after construction
  mutable util::RankedMutex mu_{util::rank::kWatchdog, "app/watchdog"};
  std::size_t current_ NETCUT_GUARDED_BY(mu_) = 0;
  std::vector<char> window_ NETCUT_GUARDED_BY(mu_);
  int win_count_ NETCUT_GUARDED_BY(mu_) = 0;
  int win_pos_ NETCUT_GUARDED_BY(mu_) = 0;
  int win_miss_ NETCUT_GUARDED_BY(mu_) = 0;
  // Starts cooled: the first breach acts at once.
  int frames_since_switch_ NETCUT_GUARDED_BY(mu_);
  int calm_streak_ NETCUT_GUARDED_BY(mu_) = 0;
};

}  // namespace netcut::app
