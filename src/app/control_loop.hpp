// End-to-end control loop of the robotic prosthetic hand (Fig 2, Section
// III): during a reach, palm-camera frames and EMG windows stream in; each
// classifier emits a grasp distribution; fusion accumulates evidence; the
// final decision must be ready before contact minus the actuation time.
// The visual classifier's per-frame compute budget is the paper's 0.9 ms —
// frames whose (simulated) inference latency exceeds it miss the fusion
// window and are dropped.
//
// The loop can carry a whole Pareto front of TRNs instead of a single
// classifier: a deadline watchdog tracks the miss rate over a sliding
// window of recent frames and, when the device degrades (thermal
// throttling, interference — injected via hw::FaultModel), falls back to
// the next-faster TRN; once the window stays calm long enough it steps
// back toward the preferred network. Cooldown plus a recovery-patience
// hysteresis keep it from flapping between neighbours.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "app/classifier.hpp"
#include "app/fusion.hpp"
#include "app/watchdog.hpp"
#include "core/lab.hpp"
#include "hw/faults.hpp"
#include "hw/measure.hpp"

namespace netcut::app {

struct ControlLoopConfig {
  double reach_duration_ms = 1500.0;  // hand leaves rest -> contact
  double frame_period_ms = 50.0;      // palm camera at 20 fps
  double actuation_time_ms = 300.0;   // hand needs this long to form a grasp
  double classifier_deadline_ms = 0.9;
  double emg_weight = 0.6;            // EMG is noisier: weight it below vision
  double vision_weight = 1.0;
  int episodes = 50;
  std::uint64_t seed = 2025;
};

/// Confidence-gated escalation attached to a TrnOption: frames whose
/// stage-1 softmax margin falls below the active threshold re-run through
/// the deeper classifier, paying `escalate_delta_ms` extra. The thresholds
/// vector is a fallback ladder of its own — strictly decreasing, so each
/// step escalates fewer frames and costs less.
struct TrnCascade {
  bool enabled = false;
  /// Deep-stage classifier answering escalated frames.
  const VisualClassifier* escalate_vision = nullptr;
  /// Nominal extra latency of an escalation (the delta layers + deep head).
  double escalate_delta_ms = 0.0;
  /// Strictly decreasing escalation thresholds, most permissive first.
  std::vector<double> thresholds;
};

/// One deployable TRN on the latency/accuracy Pareto front. Options are
/// ordered from the preferred (most accurate, slowest) network to the
/// fastest fallback; the watchdog only ever moves one step at a time.
///
/// With a cascade, the option expands into one fallback rung per threshold:
/// the watchdog tightens the escalation threshold (cheaper, less accurate)
/// step by step *before* abandoning the option for the next TRN — the
/// threshold is a third fallback axis between networks.
struct TrnOption {
  std::string name;                          // paper-style "ResNet50/113"
  double latency_ms = 0.0;                   // measured device latency
  const VisualClassifier* vision = nullptr;
  TrnCascade cascade;
};

// WatchdogConfig (shared with the serving layer) lives in app/watchdog.hpp.

/// One watchdog decision, for reporting. `from`/`to` index the fallback
/// ladder (see ControlLoop::fallback_ladder) — identical to option indices
/// when no option carries a cascade.
struct SwitchEvent {
  int episode = 0;
  double time_ms = 0.0;             // reach time within the episode
  std::size_t from = 0;
  std::size_t to = 0;               // fallback-ladder rung indices
  double window_miss_rate = 0.0;    // what triggered the move
};

struct EpisodeResult {
  data::GraspType intent;
  tensor::Tensor decision;      // fused distribution at decision time
  double angular_similarity;    // vs the intent's label distribution
  bool top1_correct;
  int frames_used = 0;
  int frames_missed = 0;        // dropped for missing the compute deadline
};

struct ControlLoopReport {
  std::vector<EpisodeResult> episodes;
  double mean_angular_similarity = 0.0;
  double top1_accuracy = 0.0;
  double deadline_miss_rate = 0.0;   // fraction of frames dropped
  double mean_frames_used = 0.0;
  // Watchdog telemetry (empty / zero when it never intervened).
  std::vector<SwitchEvent> switches;
  std::size_t final_option = 0;  // TRN option index (rung mapped back)
  std::size_t final_rung = 0;    // fallback-ladder rung index
  int frames_escalated = 0;      // frames the cascade sent to the deep stage
  double pre_fallback_miss_rate = 0.0;   // miss rate up to the first switch
  double post_fallback_miss_rate = 0.0;  // miss rate after the first switch
};

class ControlLoop {
 public:
  /// `visual_latency_ms` is the classifier's measured device latency (from
  /// the LatencyLab); per-frame jitter is drawn around it.
  ControlLoop(const VisualClassifier& vision, const EmgClassifier& emg,
              const data::EmgGenerator& emg_gen, double visual_latency_ms,
              ControlLoopConfig config);

  /// Deadline-adaptive loop over a Pareto front of TRNs, preferred first.
  /// `faults` injects device degradation (nullptr falls back to the
  /// NETCUT_FAULTS global schedule); with no active schedule and a single
  /// option the loop behaves bit-identically to the legacy constructor.
  ControlLoop(std::vector<TrnOption> options, const EmgClassifier& emg,
              const data::EmgGenerator& emg_gen, ControlLoopConfig config,
              WatchdogConfig watchdog = {}, const hw::FaultModel* faults = nullptr);

  ControlLoopReport run(const data::HandsDataset& dataset);

  /// The expanded fallback ladder the watchdog walks: one (option index,
  /// threshold index) rung per cascade threshold, a single rung for
  /// cascade-free options. Identity when no option has a cascade.
  const std::vector<std::pair<std::size_t, std::size_t>>& fallback_ladder() const {
    return ladder_;
  }

 private:
  /// Nominal per-frame latency of rung `r` (worst case for cascade rungs
  /// that can still escalate: stage 1 plus the full escalation delta).
  double rung_nominal_ms(std::size_t r) const;

  std::vector<TrnOption> options_;
  std::vector<std::pair<std::size_t, std::size_t>> ladder_;
  const EmgClassifier& emg_;
  const data::EmgGenerator& emg_gen_;
  ControlLoopConfig config_;
  WatchdogConfig watchdog_;
  const hw::FaultModel* faults_ = nullptr;
};

}  // namespace netcut::app
