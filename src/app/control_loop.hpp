// End-to-end control loop of the robotic prosthetic hand (Fig 2, Section
// III): during a reach, palm-camera frames and EMG windows stream in; each
// classifier emits a grasp distribution; fusion accumulates evidence; the
// final decision must be ready before contact minus the actuation time.
// The visual classifier's per-frame compute budget is the paper's 0.9 ms —
// frames whose (simulated) inference latency exceeds it miss the fusion
// window and are dropped.
#pragma once

#include "app/classifier.hpp"
#include "app/fusion.hpp"
#include "core/lab.hpp"
#include "hw/measure.hpp"

namespace netcut::app {

struct ControlLoopConfig {
  double reach_duration_ms = 1500.0;  // hand leaves rest -> contact
  double frame_period_ms = 50.0;      // palm camera at 20 fps
  double actuation_time_ms = 300.0;   // hand needs this long to form a grasp
  double classifier_deadline_ms = 0.9;
  double emg_weight = 0.6;            // EMG is noisier: weight it below vision
  double vision_weight = 1.0;
  int episodes = 50;
  std::uint64_t seed = 2025;
};

struct EpisodeResult {
  data::GraspType intent;
  tensor::Tensor decision;      // fused distribution at decision time
  double angular_similarity;    // vs the intent's label distribution
  bool top1_correct;
  int frames_used = 0;
  int frames_missed = 0;        // dropped for missing the compute deadline
};

struct ControlLoopReport {
  std::vector<EpisodeResult> episodes;
  double mean_angular_similarity = 0.0;
  double top1_accuracy = 0.0;
  double deadline_miss_rate = 0.0;   // fraction of frames dropped
  double mean_frames_used = 0.0;
};

class ControlLoop {
 public:
  /// `visual_latency_ms` is the classifier's measured device latency (from
  /// the LatencyLab); per-frame jitter is drawn around it.
  ControlLoop(const VisualClassifier& vision, const EmgClassifier& emg,
              const data::EmgGenerator& emg_gen, double visual_latency_ms,
              ControlLoopConfig config);

  ControlLoopReport run(const data::HandsDataset& dataset);

 private:
  const VisualClassifier& vision_;
  const EmgClassifier& emg_;
  const data::EmgGenerator& emg_gen_;
  double visual_latency_ms_;
  ControlLoopConfig config_;
};

}  // namespace netcut::app
