// Decision fusion (Section III-A): the EMG and visual classifiers each emit
// a probability distribution over grasp types; fusion combines them (and
// accumulates evidence across frames) into the final actuation decision.
#pragma once

#include <vector>

#include "tensor/tensor.hpp"

namespace netcut::app {

/// Weighted product-of-experts: normalize( Π p_i ^ w_i ). With equal
/// weights this is the geometric-mean opinion pool.
tensor::Tensor fuse(const std::vector<tensor::Tensor>& distributions,
                    const std::vector<double>& weights);

/// Running fusion across control-loop frames.
class EvidenceAccumulator {
 public:
  explicit EvidenceAccumulator(int classes);

  /// Multiply in one prediction (log-domain accumulation).
  void observe(const tensor::Tensor& distribution, double weight = 1.0);

  /// Current fused distribution (uniform before any observation).
  tensor::Tensor decision() const;

  int observations() const { return observations_; }
  void reset();

 private:
  int classes_;
  int observations_ = 0;
  std::vector<double> log_evidence_;
};

}  // namespace netcut::app
