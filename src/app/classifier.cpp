#include "app/classifier.hpp"

#include <cmath>
#include <stdexcept>

#include "core/pretrained_cache.hpp"
#include "core/trn.hpp"
#include "data/pretrained.hpp"
#include "ml/metrics.hpp"
#include "nn/activation.hpp"
#include "nn/dense.hpp"
#include "nn/init.hpp"
#include "nn/loss.hpp"
#include "nn/optimizer.hpp"

namespace netcut::app {

SoftClassifier::SoftClassifier(int features, MlpConfig config)
    : features_(features), config_(config) {
  if (features <= 0) throw std::invalid_argument("SoftClassifier: bad feature count");
  util::Rng rng(util::derive_seed(config_.seed, "soft-classifier"));
  nn::Graph g;
  int x = g.add_input(tensor::Shape::vec(features));
  auto fc1 = std::make_unique<nn::Dense>(features, config_.hidden1);
  nn::xavier_init_dense(fc1->weight(), rng);
  x = g.add(std::move(fc1), {x}, "fc1");
  x = g.add(std::make_unique<nn::ReLU>(false), {x}, "relu1");
  auto fc2 = std::make_unique<nn::Dense>(config_.hidden1, config_.hidden2);
  nn::xavier_init_dense(fc2->weight(), rng);
  x = g.add(std::move(fc2), {x}, "fc2");
  x = g.add(std::make_unique<nn::ReLU>(false), {x}, "relu2");
  auto fc3 = std::make_unique<nn::Dense>(config_.hidden2, config_.classes);
  nn::xavier_init_dense(fc3->weight(), rng);
  g.add(std::move(fc3), {x}, "logits");
  net_ = std::make_unique<nn::Network>(std::move(g));
}

tensor::Tensor SoftClassifier::standardize(const tensor::Tensor& x) const {
  tensor::Tensor out(tensor::Shape::vec(features_));
  for (int k = 0; k < features_; ++k)
    out[k] = (x[k] - mean_[static_cast<std::size_t>(k)]) / stdev_[static_cast<std::size_t>(k)];
  return out;
}

void SoftClassifier::fit(const std::vector<tensor::Tensor>& x,
                         const std::vector<tensor::Tensor>& y) {
  if (x.empty() || x.size() != y.size()) throw std::invalid_argument("SoftClassifier::fit");
  mean_.assign(static_cast<std::size_t>(features_), 0.0f);
  stdev_.assign(static_cast<std::size_t>(features_), 0.0f);
  for (const tensor::Tensor& t : x)
    for (int k = 0; k < features_; ++k) mean_[static_cast<std::size_t>(k)] += t[k];
  for (int k = 0; k < features_; ++k)
    mean_[static_cast<std::size_t>(k)] /= static_cast<float>(x.size());
  for (const tensor::Tensor& t : x)
    for (int k = 0; k < features_; ++k) {
      const float d = t[k] - mean_[static_cast<std::size_t>(k)];
      stdev_[static_cast<std::size_t>(k)] += d * d;
    }
  for (int k = 0; k < features_; ++k) {
    auto& s = stdev_[static_cast<std::size_t>(k)];
    s = std::sqrt(s / static_cast<float>(x.size()));
    if (s < 1e-6f) s = 1.0f;
  }

  nn::Adam opt(config_.learning_rate);
  opt.bind(net_->params(), net_->grads());
  util::Rng rng(util::derive_seed(config_.seed, "soft-classifier/train"));
  const int n = static_cast<int>(x.size());
  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    for (int i : rng.permutation(n)) {
      net_->zero_grads();
      const tensor::Tensor logits =
          net_->forward(standardize(x[static_cast<std::size_t>(i)]), true);
      const nn::loss::LossResult lr =
          nn::loss::soft_cross_entropy(logits, y[static_cast<std::size_t>(i)]);
      net_->backward(lr.grad);
      opt.step();
    }
  }
  trained_ = true;
}

tensor::Tensor SoftClassifier::predict(const tensor::Tensor& x) const {
  if (!trained_) throw std::logic_error("SoftClassifier::predict before fit");
  return nn::softmax(net_->forward(standardize(x), false));
}

EmgClassifier::EmgClassifier(const data::EmgGenerator& generator, int train_samples,
                             MlpConfig config)
    : mlp_(data::kEmgChannels, config) {
  const std::vector<data::Sample> ds = generator.dataset(train_samples, config.seed);
  std::vector<tensor::Tensor> x, y;
  for (const data::Sample& s : ds) {
    x.push_back(s.image);
    y.push_back(s.label);
  }
  mlp_.fit(x, y);
}

double EmgClassifier::test_accuracy(const data::EmgGenerator& generator, int samples,
                                    std::uint64_t seed) const {
  const std::vector<data::Sample> ds = generator.dataset(samples, seed);
  std::vector<tensor::Tensor> pred, label;
  for (const data::Sample& s : ds) {
    pred.push_back(mlp_.predict(s.image));
    label.push_back(s.label);
  }
  return ml::mean_angular_similarity(pred, label);
}

VisualClassifier::VisualClassifier(zoo::NetId base, int cut_node,
                                   const data::HandsDataset& dataset, MlpConfig head_config,
                                   const data::PretrainedConfig& pretrained,
                                   const std::string& weight_cache_dir)
    : base_(base), cut_node_(cut_node) {
  const nn::Graph trunk = core::pretrained_trunk(base, dataset.config().resolution,
                                                 pretrained, weight_cache_dir);
  trunk_ = std::make_unique<nn::Network>(trunk.prefix(cut_node));
  const auto calib = dataset.calibration_set(0.03, head_config.seed);
  std::vector<const tensor::Tensor*> images;
  for (const data::Sample* s : calib) images.push_back(&s->image);
  data::calibrate_batchnorm(*trunk_, images);

  const tensor::Shape out = trunk_->output_shape();
  head_ = std::make_unique<SoftClassifier>(out[0], head_config);

  std::vector<tensor::Tensor> x, y;
  for (const data::Sample& s : dataset.train()) {
    x.push_back(features(s.image));
    y.push_back(s.label);
  }
  head_->fit(x, y);
}

tensor::Tensor VisualClassifier::features(const tensor::Tensor& image) const {
  const tensor::Tensor act = trunk_->forward(image, false);
  const int C = act.shape()[0];
  const int hw = act.shape()[1] * act.shape()[2];
  tensor::Tensor f(tensor::Shape::vec(C));
  for (int c = 0; c < C; ++c) {
    const float* chan = act.data() + static_cast<std::int64_t>(c) * hw;
    double s = 0.0;
    for (int i = 0; i < hw; ++i) s += chan[i];
    f[c] = static_cast<float>(s / hw);
  }
  return f;
}

tensor::Tensor VisualClassifier::predict(const tensor::Tensor& image) const {
  return head_->predict(features(image));
}

double VisualClassifier::test_accuracy(const data::HandsDataset& dataset) const {
  std::vector<tensor::Tensor> pred, label;
  for (const data::Sample& s : dataset.test()) {
    pred.push_back(predict(s.image));
    label.push_back(s.label);
  }
  return ml::mean_angular_similarity(pred, label);
}

}  // namespace netcut::app
