// Fixed-size worker pool with a deterministic parallel_for primitive.
//
// Determinism contract: parallel_for splits [begin, end) into chunks of
// `grain` whose boundaries depend only on (begin, end, grain) — never on the
// thread count — and assigns chunk c to participant (c % threads) statically.
// A body that writes disjoint output per index (every use in this repo)
// therefore produces bit-identical results at any NETCUT_THREADS setting,
// including 1.
//
// Nested-parallelism rule: outer-level parallelism wins. A parallel_for
// issued from inside a pool worker runs serially inline on that worker, so
// kernels parallelize when called from the top level and degrade gracefully
// when an orchestration layer (evaluator/explorer) already owns the pool.
//
// Sizing: std::thread::hardware_concurrency() by default, overridable with
// the NETCUT_THREADS environment variable (read once at first use) and at
// runtime with set_num_threads(). set_num_threads() is a setup-time API; it
// must not race with in-flight parallel_for calls.
#pragma once

#include <cstdint>
#include <exception>
#include <functional>
#include <thread>
#include <vector>

#include "util/ranked_mutex.hpp"
#include "util/thread_annotations.hpp"

namespace netcut::util {

class ThreadPool {
 public:
  /// The process-wide pool used by all kernels. Lazily constructed.
  static ThreadPool& instance();

  explicit ThreadPool(int threads);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total participants (workers + the calling thread).
  int num_threads() const { return static_cast<int>(workers_.size()) + 1; }

  /// Stop all workers and restart with `threads` participants (min 1).
  void resize(int threads);

  /// Run fn(chunk_begin, chunk_end) over [begin, end) in chunks of `grain`
  /// (clamped to >= 1). Blocks until every chunk finished. The first
  /// exception thrown by any chunk is rethrown on the calling thread after
  /// all chunks complete. Chunk boundaries are thread-count independent.
  void parallel_for(std::int64_t begin, std::int64_t end, std::int64_t grain,
                    const std::function<void(std::int64_t, std::int64_t)>& fn);

  /// True while the calling thread is executing inside a parallel_for
  /// region — on a pool worker, or on the calling thread while it runs its
  /// own chunks. Nested parallel_for calls in this state run serially.
  static bool in_worker();

 private:
  struct Job {
    const std::function<void(std::int64_t, std::int64_t)>* fn = nullptr;
    std::int64_t begin = 0, end = 0, grain = 1;
    std::int64_t chunks = 0;
    int participants = 1;
  };

  void worker_loop(int participant_index);
  void run_chunks(const Job& job, int participant_index);
  void start(int workers);
  void stop();

  std::vector<std::thread> workers_;
  /// Rank kPool: the innermost lock in the system — parallel_for is called
  /// from under the evaluator's locks, never the other way around.
  RankedMutex mutex_{rank::kPool, "util/thread_pool"};
  CondVar cv_start_;
  /// Callers legitimately wait for completion while holding their own
  /// higher-level locks (e.g. the evaluator's states mutex across a
  /// materialization), so the held-while-blocking check is waived for this
  /// condvar only.
  CondVar cv_done_{/*allow_held_waits=*/true};
  std::uint64_t epoch_ NETCUT_GUARDED_BY(mutex_) = 0;
  int active_ NETCUT_GUARDED_BY(mutex_) = 0;
  bool shutdown_ NETCUT_GUARDED_BY(mutex_) = false;
  Job job_ NETCUT_GUARDED_BY(mutex_);
  std::exception_ptr first_error_ NETCUT_GUARDED_BY(mutex_);
};

/// Thread count the pool would pick with no explicit override: the
/// NETCUT_THREADS environment variable when set to a positive integer,
/// otherwise std::thread::hardware_concurrency() (min 1).
int default_thread_count();

/// Participants in the global pool.
int num_threads();

/// Resize the global pool (setup-time API; not safe during parallel_for).
void set_num_threads(int threads);

/// parallel_for on the global pool. Runs serially inline when the pool has
/// one participant, when there is a single chunk, or when called from a
/// pool worker (nested-parallelism rule).
void parallel_for(std::int64_t begin, std::int64_t end, std::int64_t grain,
                  const std::function<void(std::int64_t, std::int64_t)>& fn);

}  // namespace netcut::util
