// Deterministic random number generation for reproducible experiments.
//
// All stochastic components in this repository (dataset rendering, weight
// generation, measurement noise, training shuffles) draw from Rng instances
// seeded explicitly, so every experiment is bit-reproducible across runs.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

namespace netcut::util {

/// SplitMix64: used to expand a single seed into stream state.
std::uint64_t splitmix64(std::uint64_t& state);

/// Derive a child seed from a parent seed and a label, so independent
/// components get decorrelated streams ("seed hygiene").
std::uint64_t derive_seed(std::uint64_t parent, std::string_view label);

/// xoshiro256** generator with convenience distributions.
///
/// Not cryptographic; chosen for speed, quality, and trivially portable
/// reproducibility (no implementation-defined std::distribution behaviour).
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull);

  std::uint64_t next_u64();

  /// Uniform in [0, 1).
  double uniform();
  /// Uniform in [lo, hi).
  double uniform(double lo, double hi);
  /// Uniform integer in [lo, hi] inclusive.
  int uniform_int(int lo, int hi);
  /// Standard normal via Box-Muller (cached second value).
  double normal();
  double normal(double mean, double stdev);
  /// Log-normal with given parameters of the underlying normal.
  double lognormal(double mu, double sigma);
  /// Bernoulli trial.
  bool chance(double p);

  /// Fisher-Yates shuffle of indices [0, n).
  std::vector<int> permutation(int n);

  /// Sample from an (unnormalized) discrete distribution.
  int categorical(const std::vector<double>& weights);

 private:
  std::uint64_t s_[4];
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace netcut::util
