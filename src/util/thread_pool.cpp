#include "util/thread_pool.hpp"

#include <cstdlib>
#include <string>

namespace netcut::util {

namespace {
thread_local bool tl_in_worker = false;
}  // namespace

int default_thread_count() {
  if (const char* env = std::getenv("NETCUT_THREADS")) {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && v > 0) return static_cast<int>(v);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

ThreadPool& ThreadPool::instance() {
  static ThreadPool pool(default_thread_count());
  return pool;
}

ThreadPool::ThreadPool(int threads) { start(threads < 1 ? 0 : threads - 1); }

ThreadPool::~ThreadPool() { stop(); }

void ThreadPool::start(int workers) {
  workers_.reserve(static_cast<std::size_t>(workers));
  for (int w = 0; w < workers; ++w)
    workers_.emplace_back([this, w] { worker_loop(w + 1); });
}

void ThreadPool::stop() {
  {
    MutexLock lk(mutex_);
    shutdown_ = true;
  }
  cv_start_.notify_all();
  for (std::thread& t : workers_) t.join();
  workers_.clear();
  // Reset the job generation: workers of the next pool start with seen == 0
  // and must not mistake the previous generation's (dangling) job for new.
  // (All workers are joined, but the fields are guarded — take the lock.)
  MutexLock lk(mutex_);
  shutdown_ = false;
  epoch_ = 0;
  job_ = Job{};
}

void ThreadPool::resize(int threads) {
  stop();
  start(threads < 1 ? 0 : threads - 1);
}

bool ThreadPool::in_worker() { return tl_in_worker; }

void ThreadPool::run_chunks(const Job& job, int participant_index) {
  for (std::int64_t c = participant_index; c < job.chunks; c += job.participants) {
    const std::int64_t b = job.begin + c * job.grain;
    std::int64_t e = b + job.grain;
    if (e > job.end) e = job.end;
    try {
      (*job.fn)(b, e);
    } catch (...) {
      MutexLock lk(mutex_);
      if (!first_error_) first_error_ = std::current_exception();
    }
  }
}

void ThreadPool::worker_loop(int participant_index) {
  tl_in_worker = true;
  std::uint64_t seen = 0;
  while (true) {
    Job job;
    {
      MutexLock lk(mutex_);
      cv_start_.wait(mutex_,
                     [&]() NETCUT_REQUIRES(mutex_) { return shutdown_ || epoch_ != seen; });
      if (shutdown_) return;
      seen = epoch_;
      job = job_;
    }
    run_chunks(job, participant_index);
    {
      MutexLock lk(mutex_);
      --active_;
    }
    cv_done_.notify_all();
  }
}

void ThreadPool::parallel_for(std::int64_t begin, std::int64_t end, std::int64_t grain,
                              const std::function<void(std::int64_t, std::int64_t)>& fn) {
  if (end <= begin) return;
  if (grain < 1) grain = 1;
  const std::int64_t range = end - begin;
  const std::int64_t chunks = (range + grain - 1) / grain;
  const int participants = num_threads();

  Job job;
  job.fn = &fn;
  job.begin = begin;
  job.end = end;
  job.grain = grain;
  job.chunks = chunks;

  if (participants == 1 || chunks == 1 || tl_in_worker) {
    // Serial path: same chunk boundaries, one participant, errors surface
    // directly. Keeps nested calls from deadlocking on the shared pool.
    job.participants = 1;
    for (std::int64_t c = 0; c < chunks; ++c) {
      const std::int64_t b = begin + c * grain;
      fn(b, b + grain > end ? end : b + grain);
    }
    return;
  }

  job.participants = participants;
  {
    MutexLock lk(mutex_);
    job_ = job;
    first_error_ = nullptr;
    active_ = participants - 1;
    ++epoch_;
  }
  cv_start_.notify_all();

  // The caller participates as index 0. Mark it in-worker for the duration
  // so re-entrant parallel_for calls from its own chunks run serially inline
  // instead of clobbering the in-flight job.
  tl_in_worker = true;
  run_chunks(job, /*participant_index=*/0);
  tl_in_worker = false;

  std::exception_ptr err;
  {
    MutexLock lk(mutex_);
    cv_done_.wait(mutex_, [&]() NETCUT_REQUIRES(mutex_) { return active_ == 0; });
    err = first_error_;
    first_error_ = nullptr;
  }
  if (err) std::rethrow_exception(err);
}

int num_threads() { return ThreadPool::instance().num_threads(); }

void set_num_threads(int threads) { ThreadPool::instance().resize(threads); }

void parallel_for(std::int64_t begin, std::int64_t end, std::int64_t grain,
                  const std::function<void(std::int64_t, std::int64_t)>& fn) {
  ThreadPool::instance().parallel_for(begin, end, grain, fn);
}

}  // namespace netcut::util
