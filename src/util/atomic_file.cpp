#include "util/atomic_file.hpp"

#include <unistd.h>

#include <cstring>
#include <filesystem>
#include <fstream>

namespace netcut::util {

namespace fs = std::filesystem;

std::uint64_t fnv1a64(const void* data, std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = 14695981039346656037ull;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

std::uint64_t fnv1a64(std::string_view s) { return fnv1a64(s.data(), s.size()); }

namespace {

/// Sibling tmp path in the target's directory (rename across filesystems is
/// not atomic). The pid keeps concurrent writers from clobbering each
/// other's staging file.
std::string tmp_path_for(const std::string& path) {
  return path + ".tmp." + std::to_string(::getpid());
}

void publish(const std::string& tmp, const std::string& path) {
  std::error_code ec;
  fs::rename(tmp, path, ec);
  if (ec) {
    fs::remove(tmp);
    throw std::runtime_error("atomic write: rename " + tmp + " -> " + path + " failed: " +
                             ec.message());
  }
}

}  // namespace

void atomic_write_text(const std::string& path, std::string_view content) {
  const std::string tmp = tmp_path_for(path);
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) throw std::runtime_error("atomic_write_text: cannot open " + tmp);
    out.write(content.data(), static_cast<std::streamsize>(content.size()));
    if (!out) throw std::runtime_error("atomic_write_text: write failed for " + tmp);
  }
  publish(tmp, path);
}

namespace {
struct CheckedHeader {
  std::uint32_t magic = 0;
  std::uint32_t version = 0;
  std::uint64_t payload_size = 0;
  std::uint64_t checksum = 0;
};
}  // namespace

void atomic_write_checked(const std::string& path, std::string_view payload,
                          std::uint32_t magic, std::uint32_t version) {
  CheckedHeader h;
  h.magic = magic;
  h.version = version;
  h.payload_size = payload.size();
  h.checksum = fnv1a64(payload);

  const std::string tmp = tmp_path_for(path);
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) throw std::runtime_error("atomic_write_checked: cannot open " + tmp);
    out.write(reinterpret_cast<const char*>(&h), sizeof h);
    out.write(payload.data(), static_cast<std::streamsize>(payload.size()));
    if (!out) throw std::runtime_error("atomic_write_checked: write failed for " + tmp);
  }
  publish(tmp, path);
}

std::optional<std::string> read_checked(const std::string& path, std::uint32_t magic,
                                        std::uint32_t version) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;

  CheckedHeader h;
  in.read(reinterpret_cast<char*>(&h), sizeof h);
  if (!in) throw CorruptFileError(path + ": truncated header");
  if (h.magic != magic) throw CorruptFileError(path + ": bad magic");
  if (h.version != version)
    throw CorruptFileError(path + ": version " + std::to_string(h.version) + ", expected " +
                           std::to_string(version));

  std::string payload(h.payload_size, '\0');
  in.read(payload.data(), static_cast<std::streamsize>(payload.size()));
  if (!in || static_cast<std::uint64_t>(in.gcount()) != h.payload_size)
    throw CorruptFileError(path + ": truncated payload");
  if (in.peek() != std::ifstream::traits_type::eof())
    throw CorruptFileError(path + ": trailing bytes after payload");
  if (fnv1a64(payload) != h.checksum) throw CorruptFileError(path + ": checksum mismatch");
  return payload;
}

std::optional<std::uint32_t> peek_magic(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::uint32_t magic = 0;
  in.read(reinterpret_cast<char*>(&magic), sizeof magic);
  if (!in) return std::nullopt;
  return magic;
}

std::string quarantine_file(const std::string& path) {
  std::string target = path + ".quarantined";
  for (int i = 1; fs::exists(target); ++i) target = path + ".quarantined." + std::to_string(i);
  std::error_code ec;
  fs::rename(path, target, ec);
  if (ec)
    throw std::runtime_error("quarantine_file: rename " + path + " -> " + target +
                             " failed: " + ec.message());
  return target;
}

}  // namespace netcut::util
