#include "util/table.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace netcut::util {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  if (headers_.empty()) throw std::invalid_argument("Table: no headers");
}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) throw std::invalid_argument("Table: cell count mismatch");
  rows_.push_back(std::move(cells));
}

std::string Table::num(double v, int precision) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(precision);
  os << v;
  return os.str();
}

std::string Table::to_string() const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c) width[c] = std::max(width[c], row[c].size());

  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& cells) {
    os << "|";
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << ' ' << cells[c] << std::string(width[c] - cells[c].size(), ' ') << " |";
    }
    os << '\n';
  };
  auto emit_rule = [&] {
    os << "+";
    for (std::size_t c = 0; c < width.size(); ++c) os << std::string(width[c] + 2, '-') << '+';
    os << '\n';
  };
  emit_rule();
  emit_row(headers_);
  emit_rule();
  for (const auto& row : rows_) emit_row(row);
  emit_rule();
  return os.str();
}

std::string Table::to_csv() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c) os << ',';
      os << cells[c];
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

}  // namespace netcut::util
