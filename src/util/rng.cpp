#include "util/rng.hpp"

#include <cmath>
#include <numeric>
#include <stdexcept>

namespace netcut::util {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

std::uint64_t derive_seed(std::uint64_t parent, std::string_view label) {
  // FNV-1a over the label, mixed with the parent through splitmix64.
  std::uint64_t h = 0xCBF29CE484222325ull;
  for (char c : label) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001B3ull;
  }
  std::uint64_t state = parent ^ h;
  return splitmix64(state);
}

namespace {
std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t state = seed;
  for (auto& s : s_) s = splitmix64(state);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 random bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

int Rng::uniform_int(int lo, int hi) {
  if (hi < lo) throw std::invalid_argument("uniform_int: hi < lo");
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<int>(next_u64() % span);
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = 0.0;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stdev) { return mean + stdev * normal(); }

double Rng::lognormal(double mu, double sigma) { return std::exp(normal(mu, sigma)); }

bool Rng::chance(double p) { return uniform() < p; }

std::vector<int> Rng::permutation(int n) {
  std::vector<int> idx(static_cast<std::size_t>(n));
  std::iota(idx.begin(), idx.end(), 0);
  for (int i = n - 1; i > 0; --i) {
    const int j = uniform_int(0, i);
    std::swap(idx[static_cast<std::size_t>(i)], idx[static_cast<std::size_t>(j)]);
  }
  return idx;
}

int Rng::categorical(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) total += w;
  if (total <= 0.0) throw std::invalid_argument("categorical: non-positive total weight");
  double r = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    r -= weights[i];
    if (r <= 0.0) return static_cast<int>(i);
  }
  return static_cast<int>(weights.size()) - 1;
}

}  // namespace netcut::util
