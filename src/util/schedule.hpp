// Deterministic schedule-exploring model checker for concurrent protocols.
//
// A Scheduler serializes N test threads: exactly one runs at a time, and
// every synchronization operation — RankedMutex lock/unlock, CondVar
// wait/notify, and explicit sched::yield() calls compiled into the serve
// primitives — is a *scheduling point* where the running thread parks and
// a ScheduleSource picks who runs next. Because the threads under test
// only interleave at scheduling points and every pick is recorded, a run
// is a pure function of (program, pick list): any failing interleaving is
// replayable bit-for-bit from its pick list, and seeded random sources
// make whole exploration campaigns reproducible from one seed.
//
// This is the CHESS/loom technique in miniature: instead of hoping TSan's
// one OS interleaving per run happens to hit the steal/close/drain race,
// the checker *constructs* interleavings — exhaustive over all choice
// prefixes up to a small depth, then seeded-random beyond — and detects
// deadlocks (no runnable thread while some are blocked or waiting)
// structurally, with the full trace in the report.
//
// Production cost: zero when no scheduler is installed on the thread —
// every hook is a thread_local pointer test. The serve subsystem is the
// instrumented surface (its mutexes are util::RankedMutex and its condvars
// util::CondVar; see ranked_mutex.hpp); tests/sched_check.hpp layers the
// exploration driver (seeded campaigns + exhaustive prefixes + replay) on
// top of Scheduler::run.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace netcut::util::sched {

class Scheduler;

namespace detail {
/// Non-null only on a thread managed by a live Scheduler::run.
extern thread_local Scheduler* tl_scheduler;
/// Index of the calling thread within its scheduler's thread set.
extern thread_local std::size_t tl_thread_index;
}  // namespace detail

/// Chooses, at each scheduling point, which runnable thread runs next.
class ScheduleSource {
 public:
  virtual ~ScheduleSource() = default;
  /// Return an index in [0, runnable). `runnable` is always >= 1.
  virtual std::size_t pick(std::size_t runnable) = 0;
};

/// Seeded random schedule: uniformly random runnable thread at each point.
/// The whole schedule is a pure function of the seed.
class RandomSchedule final : public ScheduleSource {
 public:
  explicit RandomSchedule(std::uint64_t seed) : rng_(seed) {}
  std::size_t pick(std::size_t runnable) override {
    return static_cast<std::size_t>(
        rng_.uniform_int(0, static_cast<int>(runnable) - 1));
  }

 private:
  Rng rng_;
};

/// Fixed pick list (replay, or an exhaustive-enumeration prefix); beyond
/// the list it falls back to round-robin, which is what makes bounded
/// exhaustive prefixes terminate: the tail is deterministic.
class PickListSchedule final : public ScheduleSource {
 public:
  explicit PickListSchedule(std::vector<std::size_t> picks)
      : picks_(std::move(picks)) {}
  std::size_t pick(std::size_t runnable) override {
    const std::size_t at = at_++;
    if (at < picks_.size()) return picks_[at] % runnable;
    return (at - picks_.size()) % runnable;
  }

 private:
  std::vector<std::size_t> picks_;
  std::size_t at_ = 0;
};

/// Successful run: the schedule actually taken, for enumeration + replay.
struct RunResult {
  std::vector<std::size_t> picks;      // normalized pick at each point
  std::vector<std::size_t> branching;  // runnable count at each point
  std::vector<std::string> trace;      // "t<i> <tag>" per grant
};

/// A failing schedule: deadlock, livelock (step bound), or an exception
/// thrown by a thread body (how invariant checks report). Carries the full
/// trace and the pick list needed to replay the exact interleaving.
class ScheduleError : public std::runtime_error {
 public:
  ScheduleError(std::string reason, std::vector<std::size_t> picks,
                std::vector<std::string> trace, bool deadlock);

  const std::vector<std::size_t>& picks() const { return picks_; }
  const std::vector<std::string>& trace() const { return trace_; }
  bool deadlock() const { return deadlock_; }
  /// First line of what(): the reason without the trace dump.
  const std::string& reason() const { return reason_; }

 private:
  std::string reason_;
  std::vector<std::size_t> picks_;
  std::vector<std::string> trace_;
  bool deadlock_;
};

/// Render "0,1,1,2,0" — the replay string printed in failure reports.
std::string format_picks(const std::vector<std::size_t>& picks);
/// Parse the replay string back into a pick list.
std::vector<std::size_t> parse_picks(const std::string& s);

class Scheduler {
 public:
  struct Options {
    /// Scheduling decisions before the run is declared a livelock.
    std::size_t max_steps = 200000;
  };

  /// Run every body to completion under the controlled schedule, on fresh
  /// threads, serialized through the scheduling points. Throws
  /// ScheduleError on deadlock, livelock, or a body exception; the caller
  /// never observes a half-torn-down scheduler (all threads are joined on
  /// every path).
  static RunResult run(std::vector<std::function<void()>> bodies,
                       ScheduleSource& source, const Options& opts);
  static RunResult run(std::vector<std::function<void()>> bodies, ScheduleSource& source) {
    return run(std::move(bodies), source, Options());
  }

  /// Scheduler managing the calling thread, or nullptr (production).
  static Scheduler* current() { return detail::tl_scheduler; }

  // Hooks for instrumented primitives (RankedMutex / CondVar / yield).
  // All are scheduling points. `res` identifies the resource (mutex or
  // condvar address); `tag` names the site in traces.
  void on_yield(const char* tag);
  /// Park until the mutex may be retried (its holder released it).
  void on_lock_blocked(const void* mutex, const char* tag);
  /// Scheduling point just after a successful acquisition.
  void on_lock_acquired(const void* mutex, const char* tag);
  /// Mark threads blocked on `mutex` runnable; scheduling point.
  void on_unlock(const void* mutex, const char* tag);
  /// Like on_unlock but NOT a scheduling point. CondVar::wait uses it to
  /// release the mutex and register as a waiter atomically with respect to
  /// the schedule: nothing else runs between the release and the park in
  /// cv_wait, so a notify can never fall into the gap (which would make
  /// *correct* wait protocols look like lost wakeups).
  void mark_unlocked(const void* mutex);
  /// Release is the caller's job *before* calling (via mark_unlocked);
  /// parks the thread until a notify wakes it (FIFO). Throws SchedAbort on
  /// teardown.
  void cv_wait(const void* cv, const char* tag);
  /// Wake one (FIFO) or all waiters on `cv`; scheduling point.
  void cv_notify(const void* cv, bool all, const char* tag);

  /// Teardown signal thrown out of parked threads when the run aborts
  /// (deadlock elsewhere, body exception). Internal to the harness: the
  /// thread wrapper catches it. Unwinds through the code under test, so
  /// instrumented code must stay exception-safe (RAII guards) — which the
  /// serve subsystem is.
  struct SchedAbort {};

 private:
  enum class St : std::uint8_t { kRunnable, kBlocked, kWaiting, kDone };
  struct Thr {
    St st = St::kRunnable;
    bool parked = false;         // inside park()'s wait (handoff complete)
    const void* res = nullptr;   // mutex blocked on / condvar waiting on
    std::uint64_t wait_seq = 0;  // FIFO order among cv waiters
    const char* tag = "start";
    std::exception_ptr error;
  };

  explicit Scheduler(std::size_t n);
  RunResult run_impl(std::vector<std::function<void()>>& bodies,
                     ScheduleSource& source, const Options& opts);
  void thread_main(std::size_t idx, const std::function<void()>& body);
  /// Hand control back to the scheduler in state `st`; returns when
  /// granted again. On teardown: returns when `throw_on_abort` is false
  /// (safe points — the thread keeps running uncontrolled), throws
  /// SchedAbort when true (points that would otherwise park forever).
  void park(St st, const void* res, const char* tag, bool throw_on_abort);
  std::string describe_live(const char* reason);

  std::mutex m_;
  std::condition_variable cv_;
  std::ptrdiff_t active_ = -1;  // index allowed to run; -1 = scheduler
  bool abort_ = false;
  std::vector<Thr> thr_;
  std::uint64_t wait_counter_ = 0;
  std::vector<std::size_t> picks_;
  std::vector<std::size_t> branching_;
  std::vector<std::string> trace_;
};

/// Interleaving point: a no-op in production (one thread_local load), a
/// scheduling point under a model-check run. Sprinkled at the
/// protocol-critical non-mutex lines of the serve subsystem (e.g. the
/// window in ShardedQueue::balance where stolen requests are in neither
/// shard).
inline void yield(const char* tag) {
  if (Scheduler* s = Scheduler::current()) s->on_yield(tag);
}

}  // namespace netcut::util::sched
