#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace netcut::util {

namespace {
void require_nonempty(const std::vector<double>& xs, const char* fn) {
  if (xs.empty()) throw std::invalid_argument(std::string(fn) + ": empty input");
}
void require_same_size(const std::vector<double>& a, const std::vector<double>& b,
                       const char* fn) {
  if (a.size() != b.size()) throw std::invalid_argument(std::string(fn) + ": size mismatch");
  if (a.empty()) throw std::invalid_argument(std::string(fn) + ": empty input");
}
}  // namespace

double mean(const std::vector<double>& xs) {
  require_nonempty(xs, "mean");
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double stdev(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double s = 0.0;
  for (double x : xs) s += (x - m) * (x - m);
  return std::sqrt(s / static_cast<double>(xs.size() - 1));
}

double median(std::vector<double> xs) { return percentile(std::move(xs), 50.0); }

double percentile(std::vector<double> xs, double p) {
  require_nonempty(xs, "percentile");
  if (p < 0.0 || p > 100.0) throw std::invalid_argument("percentile: p out of range");
  std::sort(xs.begin(), xs.end());
  const double rank = (p / 100.0) * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, xs.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

double mad(const std::vector<double>& xs, double center) {
  require_nonempty(xs, "mad");
  std::vector<double> dev;
  dev.reserve(xs.size());
  for (double x : xs) dev.push_back(std::abs(x - center));
  return median(std::move(dev));
}

double min_of(const std::vector<double>& xs) {
  require_nonempty(xs, "min_of");
  return *std::min_element(xs.begin(), xs.end());
}

double max_of(const std::vector<double>& xs) {
  require_nonempty(xs, "max_of");
  return *std::max_element(xs.begin(), xs.end());
}

double relative_error(double estimate, double truth) {
  if (truth == 0.0) throw std::invalid_argument("relative_error: zero truth");
  return std::abs(estimate - truth) / std::abs(truth);
}

double mean_relative_error(const std::vector<double>& estimates,
                           const std::vector<double>& truths) {
  require_same_size(estimates, truths, "mean_relative_error");
  double s = 0.0;
  for (std::size_t i = 0; i < truths.size(); ++i) s += relative_error(estimates[i], truths[i]);
  return s / static_cast<double>(truths.size());
}

double mean_absolute_error(const std::vector<double>& estimates,
                           const std::vector<double>& truths) {
  require_same_size(estimates, truths, "mean_absolute_error");
  double s = 0.0;
  for (std::size_t i = 0; i < truths.size(); ++i) s += std::abs(estimates[i] - truths[i]);
  return s / static_cast<double>(truths.size());
}

double rmse(const std::vector<double>& estimates, const std::vector<double>& truths) {
  require_same_size(estimates, truths, "rmse");
  double s = 0.0;
  for (std::size_t i = 0; i < truths.size(); ++i) {
    const double d = estimates[i] - truths[i];
    s += d * d;
  }
  return std::sqrt(s / static_cast<double>(truths.size()));
}

double pearson(const std::vector<double>& xs, const std::vector<double>& ys) {
  require_same_size(xs, ys, "pearson");
  const double mx = mean(xs);
  const double my = mean(ys);
  double sxy = 0.0;
  double sxx = 0.0;
  double syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx == 0.0 || syy == 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

}  // namespace netcut::util
