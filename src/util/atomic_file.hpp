// Crash-safe file persistence primitives.
//
// Every cache this project writes (accuracy memo CSV, pretrained trunk
// weights, exploration journals) can be interrupted mid-write by a process
// kill, and re-read by a later run that must not be poisoned by the torn
// state. The building blocks here are the classic trio: tmp-file + rename
// atomic publication (POSIX rename within a directory is atomic), a
// versioned checksum header so corruption is *detected* instead of parsed,
// and quarantine-by-rename so a bad file is preserved for inspection while
// the caller recomputes.
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>

namespace netcut::util {

/// FNV-1a 64-bit hash over a byte range (checksum for cache payloads and
/// journal rows; not cryptographic).
std::uint64_t fnv1a64(const void* data, std::size_t n);
std::uint64_t fnv1a64(std::string_view s);

/// Thrown when a checked file exists but fails header/size/checksum
/// validation. Callers quarantine and recompute instead of trusting it.
class CorruptFileError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Writes `content` to `path` atomically: the bytes land in a sibling tmp
/// file which is then renamed over the target, so readers see either the
/// old file or the complete new one, never a torn prefix.
void atomic_write_text(const std::string& path, std::string_view content);

/// Atomic write of a binary payload wrapped in a validation header
/// {magic, version, payload length, FNV-1a checksum}.
void atomic_write_checked(const std::string& path, std::string_view payload,
                          std::uint32_t magic, std::uint32_t version);

/// Reads a checked file written by atomic_write_checked. Returns nullopt
/// when the file does not exist; throws CorruptFileError when the header,
/// length, or checksum does not validate (truncated or bit-flipped file).
std::optional<std::string> read_checked(const std::string& path, std::uint32_t magic,
                                        std::uint32_t version);

/// Peeks at the first four bytes of a file (format sniffing for legacy
/// caches). Returns nullopt when the file is missing or shorter than 4B.
std::optional<std::uint32_t> peek_magic(const std::string& path);

/// Renames `path` aside to the first free "<path>.quarantined[.N]" so a
/// corrupt cache is kept for post-mortem but never re-read. Returns the
/// quarantine path.
std::string quarantine_file(const std::string& path);

}  // namespace netcut::util
