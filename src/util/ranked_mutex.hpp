// RankedMutex + CondVar + MutexLock: the synchronization vocabulary of the
// concurrency-checked subsystems (serve::, util::ThreadPool, the core
// cache/journal paths).
//
// Three layers share these types, each catching a class of bug the others
// cannot:
//
//  * Compile time — every RankedMutex is a Clang thread-safety capability
//    (util/thread_annotations.hpp), so `clang++ -Wthread-safety` proves
//    guarded fields are only touched under their mutex.
//  * Model checking — under a util::sched::Scheduler run, lock/unlock/
//    wait/notify become deterministic scheduling points, so the schedule
//    explorer can construct the interleavings TSan only samples.
//  * Runtime lock discipline — with NETCUT_LOCKCHECK=1 (debug analyzer,
//    off by default, zero-cost fast path: one relaxed atomic load) every
//    acquisition is checked against the per-thread held stack:
//      - lock-order ranking: acquiring a mutex whose rank is <= the
//        highest rank already held aborts with both stacks' ranks — the
//        first inversion dies loudly instead of deadlocking in production
//        once a year. Ranks are strictly increasing along any nesting
//        chain; the table lives below (util::rank) and in DESIGN.md §13.
//      - held-while-blocking: a CondVar wait while holding any *other*
//        ranked mutex aborts — a thread parked on a condvar must not fence
//        off unrelated state (the classic convoy/deadlock seed).
//
// The production fast path is one branch per operation on top of
// std::mutex; none of the three layers costs anything unless enabled.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <mutex>

#include "util/schedule.hpp"
#include "util/thread_annotations.hpp"

namespace netcut::util {

/// Lock-rank table: a thread may only acquire a mutex of strictly higher
/// rank than every mutex it already holds. Gaps are deliberate (room for
/// future locks without renumbering).
namespace rank {
inline constexpr int kFleet = 10;        // serve::Fleet admission/accounting
inline constexpr int kServer = 20;       // serve::BatchServer accounting
inline constexpr int kQueue = 40;        // serve::RequestQueue heap (per shard)
inline constexpr int kWatchdog = 50;     // app::MissRateWatchdog window
inline constexpr int kEvalStates = 60;   // core::TrnEvaluator materialization
inline constexpr int kEvalCache = 61;    // core::TrnEvaluator accuracy memo
inline constexpr int kJournal = 62;      // core::BlockwiseExplorer journal
inline constexpr int kPool = 90;         // util::ThreadPool job state (leaf)
}  // namespace rank

class NETCUT_CAPABILITY("mutex") RankedMutex {
 public:
  RankedMutex(int rank, const char* name) : rank_(rank), name_(name) {}
  RankedMutex(const RankedMutex&) = delete;
  RankedMutex& operator=(const RankedMutex&) = delete;

  void lock() NETCUT_ACQUIRE();
  bool try_lock() NETCUT_TRY_ACQUIRE(true);
  void unlock() NETCUT_RELEASE();

  int rank() const { return rank_; }
  const char* name() const { return name_; }

  /// Runtime lock-discipline analyzer master switch: latched from
  /// NETCUT_LOCKCHECK=1 on first use; tests override programmatically.
  static bool check_enabled();
  static void set_check_enabled(bool on);

 private:
  friend class CondVar;
  /// Release without a scheduling point — CondVar::wait pairs this with
  /// the waiter registration so the two are atomic under the schedule.
  void unlock_for_wait();
  void check_order() const NETCUT_NO_THREAD_SAFETY_ANALYSIS;
  void note_acquired() NETCUT_NO_THREAD_SAFETY_ANALYSIS;
  void note_released() NETCUT_NO_THREAD_SAFETY_ANALYSIS;

  std::mutex mu_;
  int rank_;
  const char* name_;
};

/// RAII guard (the tree's std::lock_guard for RankedMutex — a first-party
/// type so the scoped-capability annotation exists even where the standard
/// library's guards carry none).
class NETCUT_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(RankedMutex& m) NETCUT_ACQUIRE(m) : m_(m) { m_.lock(); }
  ~MutexLock() NETCUT_RELEASE() { m_.unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  RankedMutex& m_;
};

/// Condition variable for RankedMutex. Scheduler-aware (waits and notifies
/// are deterministic scheduling points under a model-check run) and
/// discipline-checked (held-while-blocking aborts under NETCUT_LOCKCHECK
/// unless allow_held_waits — granted only to the ThreadPool's completion
/// condvar, where the pool cannot know what its caller holds).
class CondVar {
 public:
  explicit CondVar(bool allow_held_waits = false)
      : allow_held_waits_(allow_held_waits) {}
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Naked wait: returns on any notify. Prefer the predicate overload —
  /// this exists because real protocols (and deliberately buggy test
  /// protocols) need it.
  void wait(RankedMutex& m) NETCUT_REQUIRES(m);

  /// Callers must hold m; the body is exempt from analysis (it re-enters
  /// wait(m), whose unlock/relock cycle the checker cannot follow, and the
  /// predicate's own REQUIRES cannot be unified with `m` across the
  /// template boundary). Annotate the predicate lambda itself with
  /// NETCUT_REQUIRES(<its mutex>) so *its* body stays checked.
  template <class Pred>
  void wait(RankedMutex& m, Pred pred) NETCUT_REQUIRES(m)
      NETCUT_NO_THREAD_SAFETY_ANALYSIS {
    while (!pred()) wait(m);
  }

  void notify_one();
  void notify_all();

 private:
  std::condition_variable_any cv_;
  bool allow_held_waits_;
};

}  // namespace netcut::util
