// Clang thread-safety analysis attribute macros (no-ops on GCC and on
// clang builds without -Wthread-safety).
//
// These annotate which mutex guards which field and which capabilities a
// function needs, so `clang++ -Wthread-safety -Werror=thread-safety`
// (scripts/threadsafety.sh, wired into scripts/check.sh) proves lock
// discipline *at compile time*: a read of a GUARDED_BY field outside its
// mutex, a REQUIRES function called without the lock, or an unbalanced
// ACQUIRE/RELEASE is a build error, not a TSan roll of the dice.
//
// The vocabulary is the standard Clang one (the same macro set used by
// abseil and the LLVM docs), prefixed NETCUT_ to stay collision-free:
//
//   NETCUT_CAPABILITY("mutex")   on the lock type itself
//   NETCUT_SCOPED_CAPABILITY     on RAII guards (util::MutexLock)
//   NETCUT_GUARDED_BY(mu)        on data members
//   NETCUT_PT_GUARDED_BY(mu)     on pointed-to data
//   NETCUT_REQUIRES(mu)          caller must hold mu
//   NETCUT_ACQUIRE(mu) / NETCUT_RELEASE(mu) / NETCUT_TRY_ACQUIRE(ok, mu)
//   NETCUT_EXCLUDES(mu)          caller must NOT hold mu (self-deadlock)
//   NETCUT_NO_THREAD_SAFETY_ANALYSIS  opt a definition out (lock internals)
//
// See DESIGN.md section 13 for the mutex rank table and the conventions.
#pragma once

#if defined(__clang__) && (!defined(SWIG))
#define NETCUT_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define NETCUT_THREAD_ANNOTATION(x)  // no-op on GCC
#endif

#define NETCUT_CAPABILITY(x) NETCUT_THREAD_ANNOTATION(capability(x))

#define NETCUT_SCOPED_CAPABILITY NETCUT_THREAD_ANNOTATION(scoped_lockable)

#define NETCUT_GUARDED_BY(x) NETCUT_THREAD_ANNOTATION(guarded_by(x))

#define NETCUT_PT_GUARDED_BY(x) NETCUT_THREAD_ANNOTATION(pt_guarded_by(x))

#define NETCUT_ACQUIRED_BEFORE(...) \
  NETCUT_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))

#define NETCUT_ACQUIRED_AFTER(...) \
  NETCUT_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

#define NETCUT_REQUIRES(...) \
  NETCUT_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

#define NETCUT_ACQUIRE(...) \
  NETCUT_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

#define NETCUT_RELEASE(...) \
  NETCUT_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

#define NETCUT_TRY_ACQUIRE(...) \
  NETCUT_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

#define NETCUT_EXCLUDES(...) \
  NETCUT_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

#define NETCUT_RETURN_CAPABILITY(x) NETCUT_THREAD_ANNOTATION(lock_returned(x))

#define NETCUT_NO_THREAD_SAFETY_ANALYSIS \
  NETCUT_THREAD_ANNOTATION(no_thread_safety_analysis)
