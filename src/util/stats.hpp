// Small descriptive-statistics helpers used by measurement protocols and
// experiment reporting.
#pragma once

#include <vector>

namespace netcut::util {

double mean(const std::vector<double>& xs);
double stdev(const std::vector<double>& xs);   // sample stdev (n-1)
double median(std::vector<double> xs);         // by value: sorts a copy
double percentile(std::vector<double> xs, double p);  // p in [0, 100]
/// Median absolute deviation about `center` (robust scale; multiply by
/// 1.4826 for a normal-consistent sigma).
double mad(const std::vector<double>& xs, double center);
double min_of(const std::vector<double>& xs);
double max_of(const std::vector<double>& xs);

/// |estimate - truth| / |truth|; truth must be nonzero.
double relative_error(double estimate, double truth);

/// Mean of per-element relative errors. Sizes must match.
double mean_relative_error(const std::vector<double>& estimates,
                           const std::vector<double>& truths);

/// Mean of |estimate - truth|.
double mean_absolute_error(const std::vector<double>& estimates,
                           const std::vector<double>& truths);

/// Root-mean-square error.
double rmse(const std::vector<double>& estimates, const std::vector<double>& truths);

/// Pearson correlation coefficient.
double pearson(const std::vector<double>& xs, const std::vector<double>& ys);

}  // namespace netcut::util
