#include "util/schedule.hpp"

#include <algorithm>
#include <sstream>
#include <thread>
#include <utility>

namespace netcut::util::sched {

namespace detail {
thread_local Scheduler* tl_scheduler = nullptr;
thread_local std::size_t tl_thread_index = 0;
}  // namespace detail

ScheduleError::ScheduleError(std::string reason, std::vector<std::size_t> picks,
                             std::vector<std::string> trace, bool deadlock)
    : std::runtime_error([&] {
        std::ostringstream os;
        os << reason << "\n  replay picks: " << format_picks(picks)
           << "\n  schedule trace (" << trace.size() << " grants):";
        for (std::size_t i = 0; i < trace.size(); ++i)
          os << "\n    #" << i << " " << trace[i];
        return os.str();
      }()),
      reason_(std::move(reason)),
      picks_(std::move(picks)),
      trace_(std::move(trace)),
      deadlock_(deadlock) {}

std::string format_picks(const std::vector<std::size_t>& picks) {
  std::ostringstream os;
  for (std::size_t i = 0; i < picks.size(); ++i) {
    if (i != 0) os << ',';
    os << picks[i];
  }
  return os.str();
}

std::vector<std::size_t> parse_picks(const std::string& s) {
  std::vector<std::size_t> out;
  std::istringstream is(s);
  std::string tok;
  while (std::getline(is, tok, ','))
    if (!tok.empty()) out.push_back(static_cast<std::size_t>(std::stoull(tok)));
  return out;
}

Scheduler::Scheduler(std::size_t n) : thr_(n) {}

RunResult Scheduler::run(std::vector<std::function<void()>> bodies,
                         ScheduleSource& source, const Options& opts) {
  if (bodies.empty()) return {};
  Scheduler s(bodies.size());
  return s.run_impl(bodies, source, opts);
}

void Scheduler::thread_main(std::size_t idx, const std::function<void()>& body) {
  detail::tl_scheduler = this;
  detail::tl_thread_index = idx;
  // Park at "start" so thread *spawn* order (an OS artifact) never leaks
  // into the schedule: the source decides who begins.
  try {
    park(St::kRunnable, nullptr, "start", /*throw_on_abort=*/true);
    body();
  } catch (const SchedAbort&) {
    // Expected teardown unwind; not an error of the body.
  } catch (...) {
    std::lock_guard<std::mutex> lk(m_);
    thr_[idx].error = std::current_exception();
  }
  {
    std::lock_guard<std::mutex> lk(m_);
    thr_[idx].st = St::kDone;
    if (active_ == static_cast<std::ptrdiff_t>(idx)) active_ = -1;
  }
  cv_.notify_all();
}

void Scheduler::park(St st, const void* res, const char* tag, bool throw_on_abort) {
  const std::size_t idx = detail::tl_thread_index;
  std::unique_lock<std::mutex> lk(m_);
  if (abort_) {
    if (throw_on_abort) throw SchedAbort{};
    return;
  }
  Thr& t = thr_[idx];
  t.st = st;
  t.parked = true;
  t.res = res;
  t.tag = tag;
  if (st == St::kWaiting) t.wait_seq = ++wait_counter_;
  // Only the granted runner hands control back; the initial park (never
  // granted) must not clobber another thread's grant.
  if (active_ == static_cast<std::ptrdiff_t>(idx)) active_ = -1;
  cv_.notify_all();
  cv_.wait(lk, [&] {
    return abort_ || active_ == static_cast<std::ptrdiff_t>(idx);
  });
  t.parked = false;
  if (abort_ && active_ != static_cast<std::ptrdiff_t>(idx)) {
    if (throw_on_abort) throw SchedAbort{};
    return;
  }
}

void Scheduler::on_yield(const char* tag) {
  park(St::kRunnable, nullptr, tag, /*throw_on_abort=*/true);
}

void Scheduler::on_lock_blocked(const void* mutex, const char* tag) {
  park(St::kBlocked, mutex, tag, /*throw_on_abort=*/true);
}

void Scheduler::on_lock_acquired(const void* mutex, const char* tag) {
  // Scheduling point after acquisition: lets the checker explore "holder
  // preempted inside the critical section" orders. Safe points must not
  // throw on teardown — the caller already holds the lock and a throw here
  // would unwind past a half-constructed guard.
  park(St::kRunnable, mutex, tag, /*throw_on_abort=*/false);
}

void Scheduler::mark_unlocked(const void* mutex) {
  std::lock_guard<std::mutex> lk(m_);
  for (Thr& t : thr_)
    if (t.st == St::kBlocked && t.res == mutex) t.st = St::kRunnable;
}

void Scheduler::on_unlock(const void* mutex, const char* tag) {
  mark_unlocked(mutex);
  park(St::kRunnable, nullptr, tag, /*throw_on_abort=*/false);
}

void Scheduler::cv_wait(const void* cv, const char* tag) {
  park(St::kWaiting, cv, tag, /*throw_on_abort=*/true);
}

void Scheduler::cv_notify(const void* cv, bool all, const char* tag) {
  {
    std::lock_guard<std::mutex> lk(m_);
    if (all) {
      for (Thr& t : thr_)
        if (t.st == St::kWaiting && t.res == cv) t.st = St::kRunnable;
    } else {
      // FIFO: wake the longest-waiting thread — deterministic, and the
      // order a fair OS condvar approximates.
      Thr* oldest = nullptr;
      for (Thr& t : thr_)
        if (t.st == St::kWaiting && t.res == cv &&
            (oldest == nullptr || t.wait_seq < oldest->wait_seq))
          oldest = &t;
      if (oldest != nullptr) oldest->st = St::kRunnable;
    }
  }
  park(St::kRunnable, nullptr, tag, /*throw_on_abort=*/false);
}

std::string Scheduler::describe_live(const char* reason) {
  std::ostringstream os;
  os << reason << ":";
  for (std::size_t i = 0; i < thr_.size(); ++i) {
    const Thr& t = thr_[i];
    if (t.st == St::kDone) continue;
    os << " t" << i << "="
       << (t.st == St::kBlocked ? "blocked" : t.st == St::kWaiting ? "waiting" : "runnable")
       << "@" << t.tag;
  }
  return os.str();
}

RunResult Scheduler::run_impl(std::vector<std::function<void()>>& bodies,
                              ScheduleSource& source, const Options& opts) {
  std::vector<std::thread> threads;
  threads.reserve(bodies.size());
  for (std::size_t i = 0; i < bodies.size(); ++i)
    threads.emplace_back([this, i, &bodies] { thread_main(i, bodies[i]); });

  std::string failure;
  bool deadlock = false;
  {
    std::unique_lock<std::mutex> lk(m_);
    std::vector<std::size_t> runnable;
    for (;;) {
      // Pick only when the previous runner has fully handed control back
      // AND every live thread sits inside park() — otherwise a freshly
      // spawned thread that has not reached its initial park could be
      // granted into thin air.
      cv_.wait(lk, [&] {
        if (active_ != -1) return false;
        for (const Thr& t : thr_)
          if (t.st != St::kDone && !t.parked) return false;
        return true;
      });
      std::exception_ptr body_error;
      bool all_done = true;
      runnable.clear();
      for (std::size_t i = 0; i < thr_.size(); ++i) {
        if (thr_[i].error && !body_error) body_error = thr_[i].error;
        if (thr_[i].st != St::kDone) all_done = false;
        if (thr_[i].st == St::kRunnable) runnable.push_back(i);
      }
      if (body_error) {
        try {
          std::rethrow_exception(body_error);
        } catch (const std::exception& e) {
          failure = std::string("thread body failed: ") + e.what();
        } catch (...) {
          failure = "thread body failed: non-standard exception";
        }
        break;
      }
      if (all_done) break;
      if (runnable.empty()) {
        failure = describe_live("deadlock: no runnable thread");
        deadlock = true;
        break;
      }
      if (picks_.size() >= opts.max_steps) {
        failure = describe_live("livelock: scheduling step bound exceeded");
        break;
      }
      const std::size_t pick = source.pick(runnable.size()) % runnable.size();
      const std::size_t chosen = runnable[pick];
      picks_.push_back(pick);
      branching_.push_back(runnable.size());
      // Built by append (not operator+ chaining): gcc 12's -Wrestrict
      // false-positives on chained string concatenation under -O2.
      std::string line = "t";
      line += std::to_string(chosen);
      line += ' ';
      line += thr_[chosen].tag;
      trace_.push_back(std::move(line));
      active_ = static_cast<std::ptrdiff_t>(chosen);
      cv_.notify_all();
    }
    // Teardown: release every parked thread. Parked-forever states (cv
    // waits, initial parks) unwind via SchedAbort; safe points just keep
    // running uncontrolled — the real mutexes below them stay correct.
    abort_ = true;
    active_ = -1;
    cv_.notify_all();
  }
  cv_.notify_all();
  for (std::thread& t : threads) t.join();
  detail::tl_scheduler = nullptr;  // the run thread never had it set; defensive

  if (!failure.empty())
    throw ScheduleError(failure, std::move(picks_), std::move(trace_), deadlock);
  RunResult r;
  r.picks = std::move(picks_);
  r.branching = std::move(branching_);
  r.trace = std::move(trace_);
  return r;
}

}  // namespace netcut::util::sched
