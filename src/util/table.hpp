// Aligned console tables and CSV emission for the benchmark harnesses.
//
// Every fig* bench binary prints the same rows/series the paper's figure
// shows; Table keeps those dumps readable and machine-parseable.
#pragma once

#include <string>
#include <vector>

namespace netcut::util {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Append a row of pre-formatted cells. Must match the header count.
  void add_row(std::vector<std::string> cells);

  /// Convenience: format doubles with the given precision.
  static std::string num(double v, int precision = 4);

  /// Render as an aligned, boxed console table.
  std::string to_string() const;
  /// Render as CSV (header row + data rows).
  std::string to_csv() const;

  std::size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace netcut::util
