#include "util/ranked_mutex.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <cstddef>

namespace netcut::util {

namespace {

// Per-thread stack of held ranked mutexes (cheap enough to keep always;
// the scheduler teardown path may unwind lock scopes in odd orders, so
// release erases by value, not pop). A plain array + count rather than
// std::vector: the holder must be TRIVIALLY DESTRUCTIBLE, because the
// thread-pool singleton's atexit destructor locks its RankedMutex after
// __call_tls_dtors has already destroyed every nontrivial thread_local on
// the main thread — a vector here is a use-after-free at process exit
// (caught by the TSan wall). 32 slots is far above the deepest legal
// nesting (8 ranks, strictly increasing).
constexpr std::size_t kMaxHeld = 32;
thread_local const RankedMutex* tl_held[kMaxHeld];
thread_local std::size_t tl_held_n = 0;

// -1 = not yet latched, else 0/1. Relaxed is enough: the flag is written
// before any checked thread starts in practice, and a torn first read only
// delays the latch by one call.
std::atomic<int> g_lockcheck{-1};

[[noreturn]] void die_with_stack(const char* what, const RankedMutex& acquiring,
                                 const RankedMutex* offender) {
  std::fprintf(stderr, "netcut lockcheck: %s: acquiring '%s' (rank %d)", what,
               acquiring.name(), acquiring.rank());
  if (offender != nullptr)
    std::fprintf(stderr, " while holding '%s' (rank %d)", offender->name(),
                 offender->rank());
  std::fprintf(stderr, "\n  held stack (acquisition order):");
  for (std::size_t i = 0; i < tl_held_n; ++i)
    std::fprintf(stderr, " '%s'(rank %d)", tl_held[i]->name(), tl_held[i]->rank());
  std::fprintf(stderr, "\n  rank rule: every acquisition must strictly increase "
                       "the held rank (see DESIGN.md section 13)\n");
  std::abort();
}

[[noreturn]] void die_held_while_blocking(const RankedMutex& waited) {
  std::fprintf(stderr,
               "netcut lockcheck: held-while-blocking: CondVar wait on '%s' "
               "(rank %d) while also holding:",
               waited.name(), waited.rank());
  for (std::size_t i = 0; i < tl_held_n; ++i)
    if (tl_held[i] != &waited)
      std::fprintf(stderr, " '%s'(rank %d)", tl_held[i]->name(), tl_held[i]->rank());
  std::fprintf(stderr, "\n  a thread parked on a condvar must hold only the "
                       "condvar's own mutex (see DESIGN.md section 13)\n");
  std::abort();
}

}  // namespace

bool RankedMutex::check_enabled() {
  int v = g_lockcheck.load(std::memory_order_relaxed);
  if (v < 0) {
    const char* env = std::getenv("NETCUT_LOCKCHECK");
    v = (env != nullptr && std::strcmp(env, "1") == 0) ? 1 : 0;
    g_lockcheck.store(v, std::memory_order_relaxed);
  }
  return v != 0;
}

void RankedMutex::set_check_enabled(bool on) {
  g_lockcheck.store(on ? 1 : 0, std::memory_order_relaxed);
}

void RankedMutex::check_order() const {
  if (!check_enabled()) return;
  for (std::size_t i = 0; i < tl_held_n; ++i)
    if (tl_held[i]->rank_ >= rank_)
      die_with_stack(tl_held[i] == this ? "recursive acquisition" : "lock-order inversion",
                     *this, tl_held[i]);
}

void RankedMutex::note_acquired() {
  if (tl_held_n >= kMaxHeld) {
    std::fprintf(stderr, "netcut lockcheck: held-stack overflow acquiring '%s'\n",
                 name_);
    std::abort();
  }
  tl_held[tl_held_n++] = this;
}

void RankedMutex::note_released() {
  for (std::size_t i = tl_held_n; i-- > 0;) {
    if (tl_held[i] == this) {
      for (std::size_t j = i + 1; j < tl_held_n; ++j) tl_held[j - 1] = tl_held[j];
      --tl_held_n;
      return;
    }
  }
}

void RankedMutex::lock() {
  check_order();  // abort on inversion *before* blocking, not deadlock after
  if (sched::Scheduler* s = sched::Scheduler::current()) {
    while (!mu_.try_lock()) s->on_lock_blocked(this, name_);
    note_acquired();
    s->on_lock_acquired(this, name_);
    return;
  }
  mu_.lock();
  note_acquired();
}

bool RankedMutex::try_lock() {
  // Non-blocking: order violations cannot deadlock, so try_lock only
  // records the hold (matching common lockcheck practice).
  if (!mu_.try_lock()) return false;
  note_acquired();
  if (sched::Scheduler* s = sched::Scheduler::current())
    s->on_lock_acquired(this, name_);
  return true;
}

void RankedMutex::unlock() {
  note_released();
  mu_.unlock();
  if (sched::Scheduler* s = sched::Scheduler::current()) s->on_unlock(this, name_);
}

void RankedMutex::unlock_for_wait() {
  note_released();
  mu_.unlock();
  if (sched::Scheduler* s = sched::Scheduler::current()) s->mark_unlocked(this);
}

void CondVar::wait(RankedMutex& m) NETCUT_NO_THREAD_SAFETY_ANALYSIS {
  if (RankedMutex::check_enabled() && !allow_held_waits_) {
    for (std::size_t i = 0; i < tl_held_n; ++i)
      if (tl_held[i] != &m) die_held_while_blocking(m);
  }
  if (sched::Scheduler* s = sched::Scheduler::current()) {
    // unlock_for_wait + cv_wait form one atomic step under the schedule:
    // no other thread runs between the release and the waiter
    // registration, so a notify cannot fall into the gap.
    m.unlock_for_wait();
    try {
      s->cv_wait(this, "cv.wait");
    } catch (...) {
      // Teardown unwind (SchedAbort): the enclosing guard will unlock on
      // the way out, so the mutex must be re-held — raw relock, no
      // scheduling point (the schedule is over).
      m.mu_.lock();
      m.note_acquired();
      throw;
    }
    m.lock();
    return;
  }
  cv_.wait(m);
}

void CondVar::notify_one() {
  if (sched::Scheduler* s = sched::Scheduler::current()) {
    s->cv_notify(this, /*all=*/false, "cv.notify_one");
    return;
  }
  cv_.notify_one();
}

void CondVar::notify_all() {
  if (sched::Scheduler* s = sched::Scheduler::current()) {
    s->cv_notify(this, /*all=*/true, "cv.notify_all");
    return;
  }
  cv_.notify_all();
}

}  // namespace netcut::util
