#!/usr/bin/env bash
# Line-coverage gate for the cascade module (src/core/cascade.cpp).
#
#   ./scripts/coverage.sh
#
# Builds a gcov-instrumented tree in build-cov/ (NETCUT_COVERAGE=ON, -O0 for
# honest line attribution), runs the cascade-labelled suite, then asks gcov
# how many lines of src/core/cascade.cpp actually executed. Fails if line
# coverage is below the floor. Skips cleanly when the host has no gcov.
set -euo pipefail

cd "$(dirname "$0")/.."

FLOOR=80

if ! command -v gcov >/dev/null 2>&1; then
  echo "coverage: no gcov on this host; skipping"
  exit 0
fi

cmake -B build-cov -S . -DNETCUT_COVERAGE=ON >/dev/null
cmake --build build-cov -j "$(nproc)" --target test_cascade

# Fresh counters: stale .gcda from an earlier run would inflate the numbers.
find build-cov -name '*.gcda' -delete

# The golden front test is a *numeric* regression gate: its values were
# regenerated under the optimized build, and -Og arithmetic (no FMA
# contraction, different reduction order) legitimately lands elsewhere at
# fixture scale. It runs in the optimized tree (tier-1 + check.sh step 13);
# here we only need line execution, which the unit suite provides.
ctest --test-dir build-cov -L cascade -E GoldenFrontDominates \
  --output-on-failure -j "$(nproc)"

objdir="build-cov/src/core/CMakeFiles/netcut_core.dir"
if [ ! -f "$objdir/cascade.cpp.gcda" ]; then
  echo "coverage: no execution counters for src/core/cascade.cpp" >&2
  echo "coverage: (did the cascade-labelled tests run in build-cov/?)" >&2
  exit 1
fi

# gcov emits one "File '...'" block per source that contributed lines to the
# object; take the percentage from the cascade.cpp block, not a header's.
pct=$(cd "$objdir" && gcov -n cascade.cpp.gcda 2>/dev/null | awk '
  /^File .*src\/core\/cascade\.cpp.$/ { grab = 1; next }
  grab && /Lines executed:/ {
    sub(/^Lines executed:/, ""); sub(/%.*/, ""); print; exit
  }')

if [ -z "$pct" ]; then
  echo "coverage: could not parse gcov output for src/core/cascade.cpp" >&2
  exit 1
fi

echo "coverage: src/core/cascade.cpp lines executed: ${pct}% (floor ${FLOOR}%)"
if awk -v p="$pct" -v f="$FLOOR" 'BEGIN { exit !(p < f) }'; then
  echo "coverage: below the ${FLOOR}% floor" >&2
  exit 1
fi
echo "coverage: ok"
