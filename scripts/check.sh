#!/usr/bin/env bash
# Tier-1 verification plus the hardening wall, as one command:
#
#   ./scripts/check.sh            # or: cmake --build build --target check
#
# 1. configure + build the default tree (build/) — all first-party code
#    compiles under -Wall -Wextra -Werror -Wshadow -Wold-style-cast
# 2. run the full ctest suite (graph verifier included: NETCUT_VERIFY
#    defaults to static mode, so every builder/cut/plan self-checks)
# 3. chaos run: the full suite again under a standard NETCUT_FAULTS
#    schedule (spikes, drops, interference bursts) — the self-healing
#    measurement path must keep every result inside its tolerances
# 4. serving layer (ctest -L serve): the batched-serving suite on its own,
#    clean, again under the chaos schedule, and a third time under the
#    failover chaos schedule (worker crash + hang + flaky dispatch + a
#    throttle window, so replica death and mere slowness coexist); every
#    fleet test pins its own FaultModel, so the env schedule proves the
#    pinning rather than perturbing the assertions; then a --label-summary
#    line with per-label pass counts
# 5. kernel backends: the numerics-sensitive suites (ctest -L
#    "kernels|layers|quant") once under NETCUT_BACKEND=scalar and once
#    under NETCUT_BACKEND=simd — both dispatch tables must hold the same
#    contracts on this machine
# 6. AddressSanitizer (build-asan/): thread pool, memory planner, graph
#    verifier and kernel-backend tests — the subsystems that juggle raw
#    lifetimes plus the hand-packed AVX2/FMA panels
# 7. model checker (ctest -L sched): the schedule-exploration campaigns —
#    every serve protocol under >= 200 seeded schedules plus
#    bounded-exhaustive prefixes — clean, under the chaos schedule, and the
#    serve suite once more with the runtime lock-discipline analyzer armed
#    (NETCUT_LOCKCHECK=1: any rank inversion or held-while-blocking aborts)
# 8. negative tests (tests/negative/): prove the guards can still see —
#    the schedule explorer must catch a seeded lost wakeup + handlock, and
#    TSan must report a seeded data race; a "pass" from a blind analyzer
#    fails here
# 9. ThreadSanitizer (build-tsan/): the serving layer and the model-checker
#    suites (ctest -L "serve|sched"), clean and again under the chaos
#    schedule — the sharded queue, work stealing, fleet loop and the
#    scheduler's own handoff protocol are the lock-heavy surface; a final
#    serve pass runs under the failover chaos schedule with the runtime
#    lock-discipline analyzer armed (NETCUT_LOCKCHECK=1), so drain +
#    re-queue + recovery interleavings face TSan and the rank checker at
#    the same time
# 10. UndefinedBehaviorSanitizer (build-ubsan/): full tier-1 suite with
#    -fno-sanitize-recover=all, so any UB aborts the run
# 11. clang-tidy over src/ (scripts/tidy.sh; skips cleanly when the host
#    has no clang-tidy; any finding exits nonzero)
# 12. clang -Wthread-safety over the annotated concurrency surface
#    (scripts/threadsafety.sh; skips cleanly when the host has no clang++)
# 13. cascade (ctest -L cascade): the input-adaptive two-stage suite, clean
#    and under the chaos schedule; with NETCUT_COVERAGE=1 also runs
#    scripts/coverage.sh — a gcov-instrumented build (build-cov/) that fails
#    if line coverage of src/core/cascade.cpp drops below 80%
set -euo pipefail

cd "$(dirname "$0")/.."

NETCUT_CHAOS_SCHEDULE="spike=0.02x2.5,drop=0.002,burst=0.01x6x1.5,seed=20260806"

# Failover chaos: worker-scoped failures (a crash, a transient hang, flaky
# dispatch) layered on a throttle window, so detection has to separate dead
# replicas from slow ones. Fleet tests pin their own FaultModel; this run
# proves that pinning holds even when the environment says "kill worker 1".
NETCUT_FAILOVER_SCHEDULE="crash=1@700,hang=2@350~40,flaky=3x0.05,throttle=2.0@100~400,seed=20260808"

# Per-label pass counts from dedicated `ctest -L <label>` runs (ctest has no
# built-in pass-count-per-label report; the label suites are small).
label_summary() {
  echo "--label-summary (per-label pass counts, clean run):"
  while read -r label; do
    [ -z "$label" ] && continue
    local line total failed
    line=$(ctest --test-dir build -L "^${label}\$" -j "$(nproc)" 2>/dev/null \
             | grep -E '^[0-9]+% tests passed' || true)
    if [ -z "$line" ]; then
      echo "    ${label}: no results"
      continue
    fi
    total=$(echo "$line" | sed -E 's/.*out of ([0-9]+).*/\1/')
    failed=$(echo "$line" | sed -E 's/.*, ([0-9]+) tests failed.*/\1/')
    echo "    ${label}: $((total - failed))/${total} passed"
  done < <(ctest --test-dir build --print-labels | sed -n 's/^  //p')
}

echo "==> [1/13] configure + build (build/, -Werror)"
cmake -B build -S . >/dev/null
cmake --build build -j "$(nproc)"

echo "==> [2/13] ctest (full tier-1 suite)"
ctest --test-dir build --output-on-failure -j "$(nproc)"

echo "==> [3/13] ctest under fault injection (NETCUT_FAULTS chaos schedule)"
NETCUT_FAULTS="$NETCUT_CHAOS_SCHEDULE" \
  ctest --test-dir build --output-on-failure -j "$(nproc)"

echo "==> [4/13] serving layer (ctest -L serve, clean + chaos + failover chaos)"
ctest --test-dir build -L serve --output-on-failure -j "$(nproc)"
NETCUT_FAULTS="$NETCUT_CHAOS_SCHEDULE" \
  ctest --test-dir build -L serve --output-on-failure -j "$(nproc)"
NETCUT_FAULTS="$NETCUT_FAILOVER_SCHEDULE" \
  ctest --test-dir build -L serve --output-on-failure -j "$(nproc)"
label_summary

echo "==> [5/13] kernel backends (ctest -L kernels|layers|quant, scalar + simd)"
NETCUT_BACKEND=scalar \
  ctest --test-dir build -L 'kernels|layers|quant' --output-on-failure -j "$(nproc)"
NETCUT_BACKEND=simd \
  ctest --test-dir build -L 'kernels|layers|quant' --output-on-failure -j "$(nproc)"

echo "==> [6/13] ASan: thread pool + memory planner + verifier + kernel backends"
cmake -B build-asan -S . -DNETCUT_SANITIZE=address >/dev/null
cmake --build build-asan -j "$(nproc)" \
  --target test_util_threadpool test_nn_memplan test_nn_verify test_tensor_backends
ctest --test-dir build-asan -R 'ThreadPool|ThreadDeterminism|MemPlan|NnVerify|Backends' \
  --output-on-failure -j "$(nproc)"

echo "==> [7/13] model checker (ctest -L sched, clean + chaos + lockcheck)"
ctest --test-dir build -L sched --output-on-failure -j "$(nproc)"
NETCUT_FAULTS="$NETCUT_CHAOS_SCHEDULE" \
  ctest --test-dir build -L sched --output-on-failure -j "$(nproc)"
# Live lock-discipline pass: the whole serving suite with the runtime
# rank analyzer armed — any order inversion or held-while-blocking aborts.
NETCUT_LOCKCHECK=1 \
  ctest --test-dir build -L serve --output-on-failure -j "$(nproc)"

echo "==> [8/13] negative tests (seeded bugs must be caught)"
./tests/negative/sched_catches_lost_wakeup.sh build/tests/test_sched
./tests/negative/tsan_catches_race.sh

echo "==> [9/13] TSan: serve + sched (ctest -L serve|sched, clean + chaos + failover)"
cmake -B build-tsan -S . -DNETCUT_SANITIZE=thread >/dev/null
cmake --build build-tsan -j "$(nproc)" --target test_serve test_sched test_serve_failover
ctest --test-dir build-tsan -L 'serve|sched' --output-on-failure -j "$(nproc)"
NETCUT_FAULTS="$NETCUT_CHAOS_SCHEDULE" \
  ctest --test-dir build-tsan -L 'serve|sched' --output-on-failure -j "$(nproc)"
# Failover chaos under TSan with the runtime lock analyzer armed: shard
# drain, orphan re-queue and warm-up stealing are exactly the paths where a
# rank inversion or a lock held across a blocking call would hide.
NETCUT_FAULTS="$NETCUT_FAILOVER_SCHEDULE" NETCUT_LOCKCHECK=1 \
  ctest --test-dir build-tsan -L serve --output-on-failure -j "$(nproc)"

echo "==> [10/13] UBSan: full tier-1 suite"
cmake -B build-ubsan -S . -DNETCUT_SANITIZE=undefined >/dev/null
cmake --build build-ubsan -j "$(nproc)"
ctest --test-dir build-ubsan --output-on-failure -j "$(nproc)"

echo "==> [11/13] clang-tidy"
./scripts/tidy.sh

echo "==> [12/13] clang thread-safety analysis"
./scripts/threadsafety.sh

echo "==> [13/13] cascade (ctest -L cascade, clean + chaos; coverage behind NETCUT_COVERAGE=1)"
ctest --test-dir build -L cascade --output-on-failure -j "$(nproc)"
NETCUT_FAULTS="$NETCUT_CHAOS_SCHEDULE" \
  ctest --test-dir build -L cascade --output-on-failure -j "$(nproc)"
# Line-coverage gate for the cascade module (gcov build in build-cov/) — the
# expensive instrumented rebuild only runs when explicitly requested.
if [ "${NETCUT_COVERAGE:-0}" = "1" ]; then
  ./scripts/coverage.sh
else
  echo "    coverage gate skipped (set NETCUT_COVERAGE=1 to run scripts/coverage.sh)"
fi

echo "==> check passed"
