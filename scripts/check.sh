#!/usr/bin/env bash
# Tier-1 verification plus the hardening wall, as one command:
#
#   ./scripts/check.sh            # or: cmake --build build --target check
#
# 1. configure + build the default tree (build/) — all first-party code
#    compiles under -Wall -Wextra -Werror -Wshadow -Wold-style-cast
# 2. run the full ctest suite (graph verifier included: NETCUT_VERIFY
#    defaults to static mode, so every builder/cut/plan self-checks)
# 3. chaos run: the full suite again under a standard NETCUT_FAULTS
#    schedule (spikes, drops, interference bursts) — the self-healing
#    measurement path must keep every result inside its tolerances
# 4. AddressSanitizer (build-asan/): thread pool, memory planner and graph
#    verifier tests — the subsystems that juggle raw lifetimes
# 5. UndefinedBehaviorSanitizer (build-ubsan/): full tier-1 suite with
#    -fno-sanitize-recover=all, so any UB aborts the run
# 6. clang-tidy over src/ (scripts/tidy.sh; skips cleanly when the host
#    has no clang-tidy)
set -euo pipefail

cd "$(dirname "$0")/.."

echo "==> [1/6] configure + build (build/, -Werror)"
cmake -B build -S . >/dev/null
cmake --build build -j "$(nproc)"

echo "==> [2/6] ctest (full tier-1 suite)"
ctest --test-dir build --output-on-failure -j "$(nproc)"

echo "==> [3/6] ctest under fault injection (NETCUT_FAULTS chaos schedule)"
NETCUT_FAULTS="spike=0.02x2.5,drop=0.002,burst=0.01x6x1.5,seed=20260806" \
  ctest --test-dir build --output-on-failure -j "$(nproc)"

echo "==> [4/6] ASan: thread pool + memory planner + verifier"
cmake -B build-asan -S . -DNETCUT_SANITIZE=address >/dev/null
cmake --build build-asan -j "$(nproc)" \
  --target test_util_threadpool test_nn_memplan test_nn_verify
ctest --test-dir build-asan -R 'ThreadPool|ThreadDeterminism|MemPlan|NnVerify' \
  --output-on-failure -j "$(nproc)"

echo "==> [5/6] UBSan: full tier-1 suite"
cmake -B build-ubsan -S . -DNETCUT_SANITIZE=undefined >/dev/null
cmake --build build-ubsan -j "$(nproc)"
ctest --test-dir build-ubsan --output-on-failure -j "$(nproc)"

echo "==> [6/6] clang-tidy"
./scripts/tidy.sh

echo "==> check passed"
