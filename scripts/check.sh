#!/usr/bin/env bash
# Tier-1 verification plus sanitizer spot-checks, as one command:
#
#   ./scripts/check.sh            # or: cmake --build build --target check
#
# 1. configure + build the default tree (build/)
# 2. run the full ctest suite
# 3. build the thread-pool and memory-planner tests under AddressSanitizer
#    (build-asan/) and run them — the two subsystems that juggle raw
#    lifetimes (pool workers, arena-backed tensor views).
set -euo pipefail

cd "$(dirname "$0")/.."

echo "==> [1/3] configure + build (build/)"
cmake -B build -S . >/dev/null
cmake --build build -j "$(nproc)"

echo "==> [2/3] ctest (full tier-1 suite)"
ctest --test-dir build --output-on-failure -j "$(nproc)"

echo "==> [3/3] ASan: thread pool + memory planner"
cmake -B build-asan -S . -DNETCUT_SANITIZE=address >/dev/null
cmake --build build-asan -j "$(nproc)" --target test_util_threadpool test_nn_memplan
ctest --test-dir build-asan -R 'ThreadPool|ThreadDeterminism|MemPlan' \
  --output-on-failure -j "$(nproc)"

echo "==> check passed"
