#!/usr/bin/env bash
# Clang thread-safety analysis over the annotated concurrency surface.
#
#   ./scripts/threadsafety.sh
#
# Runs clang's -Wthread-safety static analysis (the Capability/GUARDED_BY
# family behind src/util/thread_annotations.hpp) as a syntax-only pass, with
# every thread-safety diagnostic promoted to an error. This is the
# compile-time half of the concurrency wall: it proves every GUARDED_BY
# field is only touched with its mutex held and every REQUIRES contract is
# met at each call site, on every path, without running anything.
#
# On hosts without clang++ (the gcc-only container) this is a no-op that
# exits 0, mirroring scripts/tidy.sh, so scripts/check.sh stays runnable
# everywhere; install clang >= 14 to activate the pass. The annotations
# themselves compile away under gcc (see thread_annotations.hpp).
set -euo pipefail

cd "$(dirname "$0")/.."

CXX=""
for cand in clang++ clang++-19 clang++-18 clang++-17 clang++-16 clang++-15 \
            clang++-14; do
  if command -v "$cand" >/dev/null 2>&1; then
    CXX="$cand"
    break
  fi
done
if [[ -z "$CXX" ]]; then
  echo "threadsafety: clang++ not found on PATH — skipping (install clang to enable)"
  exit 0
fi

# The annotated translation units: everything that owns a RankedMutex or a
# GUARDED_BY field. Kept explicit (not a glob) so kernel TUs with
# ISA-specific intrinsics never enter a syntax-only pass that lacks the
# build tree's -march flags.
sources=(
  src/util/ranked_mutex.cpp
  src/util/schedule.cpp
  src/util/thread_pool.cpp
  src/app/watchdog.cpp
  src/serve/queue.cpp
  src/serve/shard.cpp
  src/serve/server.cpp
  src/serve/fleet.cpp
  src/core/explorer.cpp
  src/core/evaluator.cpp
)

echo "threadsafety: $CXX -Wthread-safety over ${#sources[@]} translation units"
for tu in "${sources[@]}"; do
  "$CXX" -fsyntax-only -std=c++20 -Isrc \
    -Wthread-safety -Wthread-safety-beta -Werror=thread-safety \
    -Wno-unknown-warning-option "$tu"
done
echo "threadsafety: clean"
