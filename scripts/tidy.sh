#!/usr/bin/env bash
# clang-tidy over every first-party translation unit, driven by the
# compile-commands database the main build exports.
#
#   ./scripts/tidy.sh [extra clang-tidy args...]
#
# Checks and suppressions live in .clang-tidy at the repo root. On hosts
# without clang-tidy (the minimal gcc-only container) this is a no-op that
# exits 0, so scripts/check.sh stays runnable everywhere; install
# clang-tidy >= 14 to activate the pass.
set -euo pipefail

cd "$(dirname "$0")/.."

TIDY=""
for cand in clang-tidy clang-tidy-19 clang-tidy-18 clang-tidy-17 clang-tidy-16 \
            clang-tidy-15 clang-tidy-14; do
  if command -v "$cand" >/dev/null 2>&1; then
    TIDY="$cand"
    break
  fi
done
if [[ -z "$TIDY" ]]; then
  echo "tidy: clang-tidy not found on PATH — skipping (install clang-tidy to enable)"
  exit 0
fi

# The compile DB is produced by the normal configure (CMAKE_EXPORT_COMPILE_COMMANDS).
if [[ ! -f build/compile_commands.json ]]; then
  cmake -B build -S . >/dev/null
fi

# -march=native in the DB can postdate the bundled clang's ISA tables;
# strip it so tidy parses with its own defaults rather than erroring out.
#
# --warnings-as-errors='*' promotes EVERY enabled finding to an error so
# this script exits nonzero on any hit — tidy is a gate, not a report.
mapfile -t sources < <(find src -name '*.cpp' | sort)
echo "tidy: $TIDY over ${#sources[@]} translation units"
"$TIDY" -p build --extra-arg=-Wno-unknown-warning-option \
  --extra-arg=-march=x86-64-v2 --warnings-as-errors='*' "$@" "${sources[@]}"
echo "tidy: clean"
