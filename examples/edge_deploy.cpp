// Deployment optimizations (Section III-B4): take a trained TRN, fold its
// batch norms, quantize weights per-channel and activations per-tensor from
// a 10% calibration split, and compare fp32 vs int8 accuracy and the
// device-model latency of each deployment variant.
#include <cstdio>

#include "core/pretrained_cache.hpp"
#include "core/trn.hpp"
#include "data/hands.hpp"
#include "data/pretrained.hpp"
#include "hw/device.hpp"
#include "ml/metrics.hpp"
#include "nn/network.hpp"
#include "quant/fusion.hpp"
#include "quant/qnetwork.hpp"
#include "zoo/zoo.hpp"

int main() {
  using namespace netcut;

  data::HandsConfig data_cfg;
  data_cfg.resolution = 24;
  data_cfg.train_count = 150;
  data_cfg.test_count = 60;
  const data::HandsDataset dataset(data_cfg);

  // A mid-cut MobileNetV1-0.5 TRN with pseudo-pretrained weights and a
  // head initialized (untrained heads are fine for an accuracy-delta demo:
  // we compare fp32 vs int8 on identical weights).
  const zoo::NetId base = zoo::NetId::kMobileNetV1_050;
  nn::Graph trunk =
      core::pretrained_trunk(base, 24, data::PretrainedConfig{}, "netcut_weights");
  const auto cuts = core::blockwise_cutpoints(trunk);
  util::Rng rng(11);
  nn::Graph trn = core::build_trn(trunk, cuts[cuts.size() - 3], core::HeadConfig{}, rng);

  nn::Network fp32(trn);
  {
    std::vector<const tensor::Tensor*> calib;
    for (int i = 0; i < 12; ++i) calib.push_back(&dataset.train()[static_cast<std::size_t>(i)].image);
    data::calibrate_batchnorm(fp32, calib);
    // Mirror the calibrated batchnorm stats back into the graph we fold.
    trn = fp32.graph();
  }

  // Fold batch norms.
  quant::FusionReport fr;
  nn::Graph folded = quant::fold_batchnorm(trn, &fr);
  std::printf("BN folding: %d batchnorms absorbed, %d -> %d nodes\n", fr.batchnorms_folded,
              fr.nodes_before, fr.nodes_after);

  // Quantize + calibrate on the paper's 10% calibration split.
  quant::QuantizedNetwork qnet(folded);
  const auto calib_samples = dataset.calibration_set(0.10, 123);
  std::vector<const tensor::Tensor*> calib;
  for (const data::Sample* s : calib_samples) calib.push_back(&s->image);
  qnet.calibrate(calib);
  std::printf("activation calibration on %zu images; max weight quant error %.5f\n",
              calib.size(), qnet.max_weight_error());

  // Output agreement fp32 vs int8 on the test split.
  nn::Network fused_fp32(folded);
  double sim = 0.0;
  float max_dev = 0.0f;
  for (const data::Sample& s : dataset.test()) {
    const tensor::Tensor a = fused_fp32.forward(s.image);
    const tensor::Tensor b = qnet.forward(s.image);
    sim += ml::angular_similarity(a, b);
    max_dev = std::max(max_dev, tensor::max_abs_diff(a, b));
  }
  std::printf("fp32 vs int8 output agreement: angular similarity %.4f, max |delta| %.4f\n\n",
              sim / static_cast<double>(dataset.test().size()), max_dev);

  // Device-model latency of the deployment variants at native resolution.
  hw::DeviceModel device;
  nn::Graph native_trunk = zoo::build_trunk(base, zoo::native_resolution(base));
  util::Rng rng2(12);
  const nn::Graph native_trn =
      core::build_trn(native_trunk, cuts[cuts.size() - 3], core::HeadConfig{}, rng2);
  std::printf("device-model latency of %s at native resolution:\n",
              core::trn_name(zoo::net_name(base), native_trunk, cuts[cuts.size() - 3]).c_str());
  std::printf("  fp32, unfused : %.3f ms\n",
              device.network_latency_ms(native_trn, hw::Precision::kFp32, false));
  std::printf("  fp32, fused   : %.3f ms\n",
              device.network_latency_ms(native_trn, hw::Precision::kFp32, true));
  std::printf("  int8, fused   : %.3f ms   <- the paper's deployment configuration\n",
              device.network_latency_ms(native_trn, hw::Precision::kInt8, true));
  return 0;
}
