// Quickstart: the NetCut public API in ~60 lines.
//
//   1. pick a pretrained base network from the zoo,
//   2. look at its latency on the embedded device,
//   3. run NetCut against a deadline to get the one TRN worth retraining,
//   4. retrain its head and report accuracy.
//
// Build & run:   ./build/examples/quickstart
#include <cstdio>

#include "core/netcut.hpp"

int main() {
  using namespace netcut;

  // The simulated Jetson-Xavier-class device with int8 + fusion deployment.
  core::LatencyLab lab;

  // A small synthetic HANDS dataset (grasp-type images, soft labels).
  data::HandsConfig data_cfg;
  data_cfg.resolution = 24;
  data_cfg.train_count = 150;
  data_cfg.test_count = 60;
  const data::HandsDataset dataset(data_cfg);

  core::EvalConfig eval_cfg;
  eval_cfg.resolution = 24;
  eval_cfg.epochs = 10;
  eval_cfg.cache_path.clear();  // standalone demo: no memo file
  core::TrnEvaluator evaluator(dataset, eval_cfg);

  // Step 1-2: the base network and its measured latency.
  const zoo::NetId base = zoo::NetId::kMobileNetV2_140;
  const double base_ms = lab.measured_ms(base, lab.full_cut(base));
  std::printf("base network %s: %.3f ms on %s\n", zoo::net_name(base).c_str(), base_ms,
              lab.device().config().name.c_str());

  // Step 3: NetCut with the profiler-based estimator and a deadline the
  // base network misses.
  const double deadline_ms = 0.45;
  core::ProfilerEstimator estimator(lab);
  core::NetCut netcut(lab, evaluator);
  core::NetCutConfig cfg;
  cfg.deadline_ms = deadline_ms;
  cfg.networks = {base};
  const core::NetCutResult result = netcut.run(estimator, cfg);

  if (result.selected < 0) {
    std::printf("no TRN of %s can meet %.2f ms\n", zoo::net_name(base).c_str(), deadline_ms);
    return 1;
  }

  // Step 4: the proposal was retrained by the evaluator inside run().
  const core::NetCutProposal& p = result.winner();
  std::printf("deadline %.2f ms -> proposed TRN %s\n", deadline_ms, p.trn.trn_name.c_str());
  std::printf("  estimated %.3f ms, measured %.3f ms (%s)\n", p.estimated_ms,
              p.trn.latency_ms, p.meets_deadline ? "meets deadline" : "MISSES deadline");
  std::printf("  layers removed: %d of %d\n", p.trn.layers_removed,
              p.trn.layers_removed + p.trn.layers_remaining);
  std::printf("  retrained accuracy (angular similarity): %.4f (top-1 %.3f)\n",
              p.trn.accuracy, p.trn.top1);
  std::printf("  retraining bill on the training server: %.2f GPU-hours\n",
              p.trn.train_hours);
  return 0;
}
