// Deadline-aware batched serving of TRNs — the NetCut result put behind a
// request queue.
//
// Two TRNs of the same base network form a miniature Pareto front: the
// preferred (late-cut, more accurate) network and a faster early-cut
// fallback. Concurrent clients push requests with deadlines into a shared
// queue; the batch server packs earliest-deadline batches that still meet
// the head's deadline, runs them through the true batch-N forward path, and
// charges service time from the device model's batched roofline. When the
// offered load outruns the preferred TRN, the shared miss-rate watchdog
// falls back to the faster cut — the serving-time counterpart of the
// prosthetic control loop's deadline fallback.
//
// The second half scales the same machinery out to a heterogeneous
// three-replica serve::Fleet — a full-speed replica next to slower siblings
// (hw::scaled_device) — under a two-tenant overload with one tenant going
// bursty: admission control sheds the burst explicitly (rejections, never
// silent misses) and the per-tenant report shows the bursty tenant paying
// for its own overflow.
//
// Everything runs on the deterministic simulated clock from
// tests/serve_sim.hpp, so this demo prints the same numbers on every run.
#include <algorithm>
#include <cstdio>
#include <functional>
#include <map>
#include <memory>
#include <thread>
#include <vector>

#include "core/cascade.hpp"
#include "core/trn.hpp"
#include "hw/device.hpp"
#include "hw/faults.hpp"
#include "nn/init.hpp"
#include "nn/network.hpp"
#include "serve/fleet.hpp"
#include "serve/queue.hpp"
#include "serve/server.hpp"
#include "serve_sim.hpp"
#include "tensor/tensor.hpp"
#include "util/rng.hpp"
#include "zoo/zoo.hpp"

using namespace netcut;

namespace {

std::function<double(int)> batch_curve_on(std::shared_ptr<const nn::Graph> graph,
                                          std::shared_ptr<const hw::DeviceModel> device) {
  auto cache = std::make_shared<std::map<int, double>>();
  return [graph = std::move(graph), device = std::move(device), cache](int b) {
    if (auto it = cache->find(b); it != cache->end()) return it->second;
    const double v = device->network_latency_ms(*graph, hw::Precision::kInt8, true, b);
    return cache->emplace(b, v).first->second;
  };
}

std::function<double(int)> batch_curve(std::shared_ptr<const nn::Graph> graph) {
  return batch_curve_on(std::move(graph), std::make_shared<hw::DeviceModel>());
}

}  // namespace

int main() {
  // A late-cut TRN (preferred) and an early-cut TRN (fast fallback) of one
  // base network, both with real weights and a transfer head.
  const int res = 32;
  util::Rng rng(99);
  nn::Graph trunk = zoo::build_trunk(zoo::NetId::kMobileNetV2_100, res);
  nn::init_graph(trunk, rng);
  const std::vector<int> cuts = core::blockwise_cutpoints(trunk);

  const int late_cut = cuts[cuts.size() - 1];
  const int early_cut = cuts[cuts.size() / 4];
  auto preferred_graph = std::make_shared<const nn::Graph>(
      core::build_trn(trunk, late_cut, core::HeadConfig{}, rng));
  auto fallback_graph = std::make_shared<const nn::Graph>(
      core::build_trn(trunk, early_cut, core::HeadConfig{}, rng));
  nn::Network preferred(*preferred_graph);
  nn::Network fallback(*fallback_graph);

  const auto pref_curve = batch_curve(preferred_graph);
  const auto fall_curve = batch_curve(fallback_graph);
  std::printf("Pareto front (device model, int8+fusion):\n");
  std::printf("  preferred %-22s b1 %.4f ms  b8 %.4f ms\n",
              core::trn_name("MobileNetV2-1.00", trunk, late_cut).c_str(), pref_curve(1),
              pref_curve(8));
  std::printf("  fallback  %-22s b1 %.4f ms  b8 %.4f ms\n",
              core::trn_name("MobileNetV2-1.00", trunk, early_cut).c_str(), fall_curve(1),
              fall_curve(8));

  // Concurrent clients: four threads push their requests into the shared
  // queue (the queue is the thread-safe boundary of the serving layer);
  // arrival stamps interleave the clients on one simulated timeline.
  std::vector<tensor::Tensor> pool;
  for (int i = 0; i < 8; ++i)
    pool.push_back(tensor::Tensor::randn(tensor::Shape::chw(3, res, res), rng, 0.5f));

  serve_sim::LoadConfig load;
  load.requests = 240;
  load.mean_interarrival_ms = pref_curve(8) / 8.0 * 0.7;  // beyond batched capacity
  load.deadline_slack_ms = 3.0 * pref_curve(1);
  const std::vector<serve::Request> arrivals = serve_sim::generate_arrivals(load, pool);

  serve::RequestQueue warmup_queue;
  {
    constexpr int kClients = 4;
    std::vector<std::thread> clients;
    clients.reserve(kClients);
    for (int c = 0; c < kClients; ++c)
      clients.emplace_back([&, c] {
        for (std::size_t i = static_cast<std::size_t>(c); i < arrivals.size(); i += kClients)
          warmup_queue.push(arrivals[i]);
      });
    for (std::thread& t : clients) t.join();
    std::printf("\n%d clients enqueued %zu requests concurrently\n", kClients,
                warmup_queue.size());
  }

  // The measured run uses the open-loop event loop so waiting time is
  // modeled faithfully (the concurrent enqueue above demonstrates the
  // thread-safe boundary; the simulation owns the timeline).
  serve::RequestQueue queue;
  serve::ServeConfig sc;
  sc.max_batch = 8;
  sc.nominal_deadline_ms = load.deadline_slack_ms;
  sc.watchdog.window = 16;
  serve::BatchServer server({{"preferred", &preferred, batch_curve(preferred_graph), {}},
                             {"fallback", &fallback, batch_curve(fallback_graph), {}}},
                            queue, sc);
  const serve_sim::SimReport rep = serve_sim::run_open_loop(server, queue, arrivals);

  std::printf("\nserved %zu requests in %.2f simulated ms\n", rep.completions.size(),
              rep.makespan_ms);
  std::printf("  throughput %.0f req/s, p50 %.3f ms, p99 %.3f ms, miss rate %.1f%%, "
              "mean batch %.2f\n",
              rep.throughput_rps, rep.p50_response_ms, rep.p99_response_ms,
              100.0 * rep.miss_rate, rep.mean_batch);
  for (const serve::ServeSwitch& s : server.stats().switches)
    std::printf("  watchdog: batch %lld, option %zu -> %zu (window miss rate %.0f%%)\n",
                static_cast<long long>(s.batch_index), s.from, s.to,
                100.0 * s.window_miss_rate);
  if (server.stats().switches.empty())
    std::printf("  watchdog: never intervened\n");
  std::printf("  final option: %zu (%s)\n", server.current_option(),
              server.current_option() == 0 ? "preferred" : "fallback");

  // -------------------------------------------------------------------------
  // Cascade serving: one compute option running the input-adaptive cascade.
  // Every request pays the early-cut stage; only low-margin requests
  // escalate to the late cut, resuming from the shared trunk activation.
  // Batch formation budgets the expected escalation mass (p_escalate), so
  // admission stays honest about the second stage it may have to pay. The
  // load is deadline-feasible (batches stay small); the same arrivals run
  // through an all-deep static server for the head-to-head.
  // -------------------------------------------------------------------------
  core::CascadeTrn cascade(trunk, early_cut, late_cut, core::HeadConfig{}, rng);
  auto shared_device = std::make_shared<const hw::DeviceModel>();
  const int resume = cascade.resume_node();
  auto stage2_cache = std::make_shared<std::map<int, double>>();
  const auto stage2_curve = [graph = preferred_graph, shared_device, resume,
                             stage2_cache](int k) {
    if (auto it = stage2_cache->find(k); it != stage2_cache->end()) return it->second;
    const double v = shared_device->network_latency_from_ms(*graph, hw::Precision::kInt8,
                                                            true, resume, k);
    return stage2_cache->emplace(k, v).first->second;
  };

  // Calibrate on the request pool itself — the demo-scale stand-in for the
  // explorer's held-out calibration split. The threshold is the pool's
  // lower-quartile stage-1 margin, so roughly a quarter of the requests pay
  // for the deep stage and the rest exit early.
  std::vector<double> margins;
  for (const tensor::Tensor& img : pool) margins.push_back(cascade.stage1(img).margin);
  std::sort(margins.begin(), margins.end());
  const double threshold = margins[margins.size() / 4];
  int pool_wishes = 0;
  for (const double m : margins)
    if (m < threshold) ++pool_wishes;
  const double p_escalate =
      static_cast<double>(pool_wishes) / static_cast<double>(pool.size());

  serve_sim::LoadConfig cascade_load;
  cascade_load.requests = 240;
  cascade_load.mean_interarrival_ms = 1.2 * pref_curve(1);  // feasible even all-deep
  cascade_load.deadline_slack_ms = 3.0 * pref_curve(1);
  const std::vector<serve::Request> cascade_arrivals =
      serve_sim::generate_arrivals(cascade_load, pool);

  serve::ServeConfig csc = sc;
  csc.nominal_deadline_ms = cascade_load.deadline_slack_ms;
  serve::ServeCascade sco;
  sco.enabled = true;
  sco.trn = &cascade;
  sco.threshold = threshold;
  sco.p_escalate = p_escalate;
  sco.stage2_ms = stage2_curve;
  serve::RequestQueue cascade_queue;
  serve::BatchServer cascade_server(
      {{"cascade", nullptr, batch_curve(fallback_graph), sco}}, cascade_queue, csc);
  const serve_sim::SimReport crep =
      serve_sim::run_open_loop(cascade_server, cascade_queue, cascade_arrivals);

  nn::Network deep_static(*preferred_graph);
  serve::RequestQueue deep_queue;
  serve::BatchServer deep_server(
      {{"all-deep", &deep_static, batch_curve(preferred_graph), {}}}, deep_queue, csc);
  const serve_sim::SimReport drep =
      serve_sim::run_open_loop(deep_server, deep_queue, cascade_arrivals);

  const auto mean_response = [](const serve_sim::SimReport& r) {
    double sum = 0.0;
    for (const serve::Completion& c : r.completions) sum += c.finish_ms - c.arrival_ms;
    return sum / static_cast<double>(r.completions.size());
  };
  std::printf("\ncascade serving (%s stage 1, escalate below margin %.2f, "
              "calibrated p %.2f):\n",
              core::trn_name("MobileNetV2-1.00", trunk, early_cut).c_str(), threshold,
              p_escalate);
  std::printf("  stage 2 resumes at node %d (%.4f ms b1, vs %.4f ms for the deep TRN "
              "from scratch)\n",
              resume, stage2_curve(1), pref_curve(1));
  std::printf("  cascade:  mean %.3f ms, p50 %.3f ms, p99 %.3f ms, miss %.1f%%, "
              "escalated %lld of %zu\n",
              mean_response(crep), crep.p50_response_ms, crep.p99_response_ms,
              100.0 * crep.miss_rate,
              static_cast<long long>(cascade_server.stats().escalated),
              crep.completions.size());
  std::printf("  all-deep: mean %.3f ms, p50 %.3f ms, p99 %.3f ms, miss %.1f%% "
              "(same arrivals)\n",
              mean_response(drep), drep.p50_response_ms, drep.p99_response_ms,
              100.0 * drep.miss_rate);

  // -------------------------------------------------------------------------
  // Heterogeneous fleet: three replicas of the same Pareto front on devices
  // of different speed, behind the sharded queue with work stealing and
  // admission control.
  // -------------------------------------------------------------------------
  struct ReplicaSpec {
    const char* name;
    double perf_factor;
  };
  const std::vector<ReplicaSpec> replicas = {
      {"replica0/full", 1.0}, {"replica1/mid", 0.6}, {"replica2/slow", 0.35}};

  // Each replica owns its Network instances (forward state is per-server)
  // and its own latency curves from its scaled device.
  std::vector<std::unique_ptr<nn::Network>> fleet_nets;
  std::vector<serve::FleetWorker> specs;
  std::vector<std::function<double(int)>> pref_curves;  // per-replica, reused below
  std::printf("\nheterogeneous fleet (scaled devices, preferred TRN):\n");
  for (std::size_t w = 0; w < replicas.size(); ++w) {
    auto device = std::make_shared<const hw::DeviceModel>(
        hw::scaled_device({}, replicas[w].perf_factor, replicas[w].name));
    const auto pref = batch_curve_on(preferred_graph, device);
    const auto fall = batch_curve_on(fallback_graph, device);
    std::printf("  %-14s %.2fx: preferred b1 %.4f ms b8 %.4f ms, fallback b1 %.4f ms\n",
                replicas[w].name, replicas[w].perf_factor, pref(1), pref(8), fall(1));
    fleet_nets.push_back(std::make_unique<nn::Network>(*preferred_graph));
    fleet_nets.push_back(std::make_unique<nn::Network>(*fallback_graph));
    serve::FleetWorker fw;
    fw.name = replicas[w].name;
    fw.options = {{"preferred", fleet_nets[2 * w].get(), pref, {}},
                  {"fallback", fleet_nets[2 * w + 1].get(), fall, {}}};
    fw.serve.max_batch = 8;
    fw.serve.nominal_deadline_ms = 4.0 * pref_curve(1);
    fw.serve.seed = util::derive_seed(7070, "demo/fleet/worker/" + std::to_string(w));
    fw.serve.watchdog.window = 16;
    specs.push_back(std::move(fw));
    pref_curves.push_back(pref);
  }

  serve::FleetConfig fc;
  fc.classes = {{"gold", 4.0 * pref_curve(1), 4.0 * pref_curve(1), 3.0},
                {"standard", 8.0 * pref_curve(1), 8.0 * pref_curve(1), 1.0}};
  fc.pressure_backlog = 24;
  serve::Fleet fleet(std::move(specs), fc);

  // Two steady tenants plus tenant 99, which bursts to several times its
  // share mid-run — an overload squarely at the admission controller.
  serve_sim::FleetLoadConfig fleet_load;
  fleet_load.requests = 2400;
  // Size the base load against the *preferred* option's aggregate batched
  // rate (the service rate the fleet actually runs at while accuracy
  // allows), not the fallback's: ~80% preferred-load at the base rate, so
  // only the mid-run burst forces shedding and fallback switches.
  double capacity = 0.0;  // aggregate amortized batched service rate, req/ms
  for (const auto& pref : pref_curves) capacity += 8.0 / pref(8);
  fleet_load.mean_interarrival_ms = 1.0 / (0.8 * capacity);
  fleet_load.tenants = {{99, 1, 1.0}, {1, 0, 1.0}, {2, 1, 1.0}};
  {
    constexpr std::size_t kNoBoost = static_cast<std::size_t>(-1);
    const double span =
        fleet_load.mean_interarrival_ms * static_cast<double>(fleet_load.requests);
    fleet_load.phases = {{span * 0.3, 1.0, kNoBoost, 1.0},
                         {span * 0.2, 2.5, 0, 8.0},  // tenant 99 bursts past capacity
                         {span * 0.5, 1.0, kNoBoost, 1.0}};
  }
  const auto fleet_arrivals = serve_sim::generate_fleet_arrivals(fleet_load, fc.classes, pool);
  const serve_sim::FleetReport frep = serve_sim::run_fleet_open_loop(fleet, fleet_arrivals);

  std::printf("\nfleet served %lld of %lld requests in %.2f simulated ms "
              "(burst at ~2x capacity mid-run)\n",
              static_cast<long long>(frep.served), static_cast<long long>(frep.submitted),
              frep.makespan_ms);
  std::printf("  throughput %.0f req/s, p50 %.3f ms, p99 %.3f ms, mean batch %.2f, "
              "steals %lld\n",
              frep.throughput_rps, frep.p50_response_ms, frep.p99_response_ms,
              frep.mean_batch, static_cast<long long>(frep.steals));
  std::printf("  shed %lld (%.1f%%) as explicit rejections, missed %lld\n",
              static_cast<long long>(frep.shed), 100.0 * frep.shed_rate,
              static_cast<long long>(frep.missed));
  for (std::size_t w = 0; w < fleet.workers(); ++w)
    std::printf("  %-14s ran %lld batches\n", fleet.worker_name(w).c_str(),
                static_cast<long long>(fleet.worker(w).stats().batches));
  for (const auto& [tenant, tr] : frep.tenants)
    std::printf("  tenant %-3u (%s)%s: submitted %lld, shed %5.1f%%, miss %.2f%%, "
                "p99 %.3f ms (budget %.3f ms)\n",
                tenant, fc.classes[tr.slo].name.c_str(), tenant == 99 ? " [bursty]" : "",
                static_cast<long long>(tr.submitted), 100.0 * tr.shed_rate,
                100.0 * tr.miss_rate, tr.p99_response_ms, fc.classes[tr.slo].p99_budget_ms);

  // -------------------------------------------------------------------------
  // Failover: four homogeneous replicas, replica 2 fail-stops mid-run via a
  // crash= worker clause. Heartbeat deadlines (on the service timescale)
  // declare it Down, its shard is drained and the orphans are re-queued onto
  // the survivors — explicit outcomes only, no silent misses.
  // -------------------------------------------------------------------------
  const char* kill_spec = "crash=2@200,seed=17";
  const hw::FaultModel kill_model(hw::parse_fault_spec(kill_spec));

  std::vector<serve::FleetWorker> fo_specs;
  for (std::size_t w = 0; w < 4; ++w) {
    serve::FleetWorker fw;
    fw.name = "replica" + std::to_string(w);
    // Timing-only options: the failover act is about the control plane, so
    // it skips the batch forwards and runs purely on the latency curves.
    fw.options = {{"preferred", nullptr, batch_curve(preferred_graph), {}},
                  {"fallback", nullptr, batch_curve(fallback_graph), {}}};
    fw.serve.max_batch = 8;
    fw.serve.nominal_deadline_ms = 8.0 * pref_curve(1);
    fw.serve.seed = util::derive_seed(7070, "demo/failover/worker/" + std::to_string(w));
    fw.serve.watchdog.window = 16;
    fo_specs.push_back(std::move(fw));
  }
  serve::FleetConfig fo_cfg;
  fo_cfg.classes = {{"standard", 8.0 * pref_curve(1), 8.0 * pref_curve(1), 1.0}};
  fo_cfg.faults = &kill_model;
  // Heartbeat deadlines a few batch times out — long silences on a fleet
  // this fast would let the stealers drain the dying shard before the
  // detector ever fires.
  fo_cfg.health.suspect_after_ms = 2.0 * pref_curve(8);
  fo_cfg.health.down_after_ms = 5.0 * pref_curve(8);
  serve::Fleet fo_fleet(std::move(fo_specs), fo_cfg);

  serve_sim::FleetLoadConfig fo_load;
  fo_load.requests = 12000;
  fo_load.mean_interarrival_ms = pref_curve(8) / 8.0 / 3.2;  // ~80% of 4 replicas
  for (std::uint32_t tenant = 1; tenant <= 8; ++tenant)
    fo_load.tenants.push_back({tenant, 0, 1.0});
  const auto fo_arrivals = serve_sim::generate_fleet_arrivals(fo_load, fo_cfg.classes, {});
  std::vector<serve::Completion> fo_completions;
  const serve_sim::FleetReport fo_rep =
      serve_sim::run_fleet_open_loop(fo_fleet, fo_arrivals, &fo_completions);

  const serve::ReplicaHealth dead = fo_fleet.worker_health(2);
  std::printf("\nfailover act: NETCUT_FAULTS=\"%s\" kills replica2 mid-run\n", kill_spec);
  std::printf("  timeline: last heartbeat %.3f ms -> declared %s at %.3f ms "
              "(detection latency %.3f ms)\n",
              dead.last_progress_ms, serve::replica_state_name(dead.state),
              dead.detected_ms, dead.detected_ms - dead.last_progress_ms);
  std::printf("  drain: %lld orphans re-queued onto survivors, %lld shed at "
              "re-admission (of %lld shed total)\n",
              static_cast<long long>(fo_rep.requeued),
              static_cast<long long>(fo_rep.drain_shed),
              static_cast<long long>(fo_rep.shed));
  // Post-failover tail: admitted responses that finished after detection.
  std::vector<double> post;
  for (const serve::Completion& c : fo_completions)
    if (!c.rejected && c.finish_ms > dead.detected_ms)
      post.push_back(c.finish_ms - c.arrival_ms);
  std::sort(post.begin(), post.end());
  std::printf("  post-failover: p99 %.3f ms vs budget %.3f ms over %zu completions, "
              "miss rate %.2f%%\n",
              serve_sim::quantile(post, 0.99), fo_cfg.classes[0].p99_budget_ms, post.size(),
              100.0 * fo_rep.miss_rate);
  for (std::size_t w = 0; w < fo_fleet.workers(); ++w) {
    const auto& sw = fo_fleet.worker(w).stats().switches;
    std::printf("  %-9s %-9s %4lld batches, %zu watchdog switch%s%s\n",
                fo_fleet.worker_name(w).c_str(),
                serve::replica_state_name(fo_fleet.worker_state(w)),
                static_cast<long long>(fo_fleet.worker(w).stats().batches), sw.size(),
                sw.size() == 1 ? "" : "es",
                w == 2 ? "  <- killed" : "");
  }
  std::printf("  conservation: %lld submitted = %lld served + %lld shed (explicit), "
              "%lld failover\n",
              static_cast<long long>(fo_rep.submitted),
              static_cast<long long>(fo_rep.served), static_cast<long long>(fo_rep.shed),
              static_cast<long long>(fo_rep.failovers));
  return 0;
}
