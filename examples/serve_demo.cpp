// Deadline-aware batched serving of TRNs — the NetCut result put behind a
// request queue.
//
// Two TRNs of the same base network form a miniature Pareto front: the
// preferred (late-cut, more accurate) network and a faster early-cut
// fallback. Concurrent clients push requests with deadlines into a shared
// queue; the batch server packs earliest-deadline batches that still meet
// the head's deadline, runs them through the true batch-N forward path, and
// charges service time from the device model's batched roofline. When the
// offered load outruns the preferred TRN, the shared miss-rate watchdog
// falls back to the faster cut — the serving-time counterpart of the
// prosthetic control loop's deadline fallback.
//
// Everything runs on the deterministic simulated clock from
// tests/serve_sim.hpp, so this demo prints the same numbers on every run.
#include <cstdio>
#include <functional>
#include <map>
#include <memory>
#include <thread>
#include <vector>

#include "core/trn.hpp"
#include "hw/device.hpp"
#include "nn/init.hpp"
#include "nn/network.hpp"
#include "serve/queue.hpp"
#include "serve/server.hpp"
#include "serve_sim.hpp"
#include "tensor/tensor.hpp"
#include "util/rng.hpp"
#include "zoo/zoo.hpp"

using namespace netcut;

namespace {

std::function<double(int)> batch_curve(std::shared_ptr<const nn::Graph> graph) {
  auto device = std::make_shared<hw::DeviceModel>();
  auto cache = std::make_shared<std::map<int, double>>();
  return [graph = std::move(graph), device, cache](int b) {
    if (auto it = cache->find(b); it != cache->end()) return it->second;
    const double v = device->network_latency_ms(*graph, hw::Precision::kInt8, true, b);
    return cache->emplace(b, v).first->second;
  };
}

}  // namespace

int main() {
  // A late-cut TRN (preferred) and an early-cut TRN (fast fallback) of one
  // base network, both with real weights and a transfer head.
  const int res = 32;
  util::Rng rng(99);
  nn::Graph trunk = zoo::build_trunk(zoo::NetId::kMobileNetV2_100, res);
  nn::init_graph(trunk, rng);
  const std::vector<int> cuts = core::blockwise_cutpoints(trunk);

  const int late_cut = cuts[cuts.size() - 1];
  const int early_cut = cuts[cuts.size() / 4];
  auto preferred_graph = std::make_shared<const nn::Graph>(
      core::build_trn(trunk, late_cut, core::HeadConfig{}, rng));
  auto fallback_graph = std::make_shared<const nn::Graph>(
      core::build_trn(trunk, early_cut, core::HeadConfig{}, rng));
  nn::Network preferred(*preferred_graph);
  nn::Network fallback(*fallback_graph);

  const auto pref_curve = batch_curve(preferred_graph);
  const auto fall_curve = batch_curve(fallback_graph);
  std::printf("Pareto front (device model, int8+fusion):\n");
  std::printf("  preferred %-22s b1 %.4f ms  b8 %.4f ms\n",
              core::trn_name("MobileNetV2-1.00", trunk, late_cut).c_str(), pref_curve(1),
              pref_curve(8));
  std::printf("  fallback  %-22s b1 %.4f ms  b8 %.4f ms\n",
              core::trn_name("MobileNetV2-1.00", trunk, early_cut).c_str(), fall_curve(1),
              fall_curve(8));

  // Concurrent clients: four threads push their requests into the shared
  // queue (the queue is the thread-safe boundary of the serving layer);
  // arrival stamps interleave the clients on one simulated timeline.
  std::vector<tensor::Tensor> pool;
  for (int i = 0; i < 8; ++i)
    pool.push_back(tensor::Tensor::randn(tensor::Shape::chw(3, res, res), rng, 0.5f));

  serve_sim::LoadConfig load;
  load.requests = 240;
  load.mean_interarrival_ms = pref_curve(8) / 8.0 * 0.7;  // beyond batched capacity
  load.deadline_slack_ms = 3.0 * pref_curve(1);
  const std::vector<serve::Request> arrivals = serve_sim::generate_arrivals(load, pool);

  serve::RequestQueue warmup_queue;
  {
    constexpr int kClients = 4;
    std::vector<std::thread> clients;
    clients.reserve(kClients);
    for (int c = 0; c < kClients; ++c)
      clients.emplace_back([&, c] {
        for (std::size_t i = static_cast<std::size_t>(c); i < arrivals.size(); i += kClients)
          warmup_queue.push(arrivals[i]);
      });
    for (std::thread& t : clients) t.join();
    std::printf("\n%d clients enqueued %zu requests concurrently\n", kClients,
                warmup_queue.size());
  }

  // The measured run uses the open-loop event loop so waiting time is
  // modeled faithfully (the concurrent enqueue above demonstrates the
  // thread-safe boundary; the simulation owns the timeline).
  serve::RequestQueue queue;
  serve::ServeConfig sc;
  sc.max_batch = 8;
  sc.nominal_deadline_ms = load.deadline_slack_ms;
  sc.watchdog.window = 16;
  serve::BatchServer server({{"preferred", &preferred, batch_curve(preferred_graph)},
                             {"fallback", &fallback, batch_curve(fallback_graph)}},
                            queue, sc);
  const serve_sim::SimReport rep = serve_sim::run_open_loop(server, queue, arrivals);

  std::printf("\nserved %zu requests in %.2f simulated ms\n", rep.completions.size(),
              rep.makespan_ms);
  std::printf("  throughput %.0f req/s, p50 %.3f ms, p99 %.3f ms, miss rate %.1f%%, "
              "mean batch %.2f\n",
              rep.throughput_rps, rep.p50_response_ms, rep.p99_response_ms,
              100.0 * rep.miss_rate, rep.mean_batch);
  for (const serve::ServeSwitch& s : server.stats().switches)
    std::printf("  watchdog: batch %lld, option %zu -> %zu (window miss rate %.0f%%)\n",
                static_cast<long long>(s.batch_index), s.from, s.to,
                100.0 * s.window_miss_rate);
  if (server.stats().switches.empty())
    std::printf("  watchdog: never intervened\n");
  std::printf("  final option: %zu (%s)\n", server.current_option(),
              server.current_option() == 0 ? "preferred" : "fallback");
  return 0;
}
