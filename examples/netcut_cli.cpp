// Command-line front end for NetCut: pick a deadline and an estimator, get
// the deadline-meeting TRN per network and the final selection.
//
//   netcut_cli [--deadline MS] [--estimator profiler|analytical]
//              [--net NAME ...] [--fast] [--cache-dir DIR] [--workers N]
//              [--kill-worker W@S] [--cascade SPEC]
//
// Example:
//   ./build/examples/netcut_cli --deadline 0.6 --estimator analytical
//
// --workers N skips the selection pipeline and runs the fleet serving demo
// instead: N timing-only replicas behind the sharded queue with admission
// control, under a deterministic two-tenant overload (serve/fleet.hpp).
// --kill-worker W@S additionally fail-stops replica W at its S-th dispatch
// attempt (the crash=W@S fault clause), printing the failover timeline:
// detection, drain, orphan re-queue onto the survivors.
// --cascade shallow=I,deep=J,thr=P calibrates the input-adaptive cascade
// over blockwise cut ordinals I < J: escalate to the deep cut when the
// shallow head's softmax margin is below P, and print the operating point
// (escalation rate, accuracy, expected latency) against both static cuts.
//
// Exit codes: 0 success, 1 no network meets the deadline, 2 bad arguments,
// 3 filesystem failure (unreadable/unwritable caches), 4 runtime failure.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/cascade.hpp"
#include "core/estimator.hpp"
#include "core/netcut.hpp"
#include "hw/device.hpp"
#include "hw/faults.hpp"
#include "serve/fleet.hpp"
#include "serve_sim.hpp"
#include "tensor/backend.hpp"
#include "util/table.hpp"

namespace {

constexpr int kExitNoFeasible = 1;
constexpr int kExitBadArgs = 2;
constexpr int kExitFilesystem = 3;
constexpr int kExitRuntime = 4;

void usage() {
  std::printf(
      "usage: netcut_cli [--deadline MS] [--estimator profiler|analytical]\n"
      "                  [--net NAME ...] [--fast] [--cache-dir DIR]\n"
      "                  [--backend scalar|simd] [--workers N] [--kill-worker W@S]\n"
      "                  [--cascade shallow=I,deep=J,thr=P]\n"
      "nets: ");
  for (auto id : netcut::zoo::all_nets())
    std::printf("%s ", netcut::zoo::net_name(id).c_str());
  std::printf("\n");
}

// Fleet serving demo behind --workers N: a homogeneous timing-only fleet of
// N replicas over the smallest zoo trunk, driven by the same deterministic
// open-loop simulation the tests and bench use, at ~1.5x the fleet's
// aggregate capacity so admission control visibly sheds.
int run_fleet_demo(std::size_t workers, const std::string& kill_spec) {
  using namespace netcut;

  const auto graph = std::make_shared<const nn::Graph>(
      zoo::build_trunk(zoo::NetId::kMobileNetV1_025, 32));
  auto device = std::make_shared<hw::DeviceModel>();
  auto cache = std::make_shared<std::map<int, double>>();
  auto curve = [graph, device, cache](int b) {
    if (auto it = cache->find(b); it != cache->end()) return it->second;
    const double v = device->network_latency_ms(*graph, hw::Precision::kInt8, true, b);
    return cache->emplace(b, v).first->second;
  };

  // --kill-worker W@S is sugar for the crash=W@S NETCUT_FAULTS clause,
  // scoped to this fleet (measurement streams are untouched).
  const hw::FaultModel kill_model(
      kill_spec.empty() ? hw::parse_fault_spec("off")
                        : hw::parse_fault_spec("crash=" + kill_spec));

  serve::FleetConfig fc;
  fc.classes = {{"gold", 5.0 * curve(1), 5.0 * curve(1), 3.0},
                {"standard", 9.0 * curve(1), 9.0 * curve(1), 1.0}};
  if (!kill_spec.empty()) {
    fc.faults = &kill_model;
    // Heartbeat deadlines a few batch times out, on the simulated fleet's
    // service timescale, so detection (and the drain) lands mid-run.
    fc.health.suspect_after_ms = 2.0 * curve(8);
    fc.health.down_after_ms = 5.0 * curve(8);
  }
  std::vector<serve::FleetWorker> specs;
  for (std::size_t w = 0; w < workers; ++w) {
    serve::FleetWorker fw;
    fw.name = "replica" + std::to_string(w);
    fw.options = {{"trn", nullptr, curve, {}}};
    fw.serve.max_batch = 8;
    fw.serve.nominal_deadline_ms = fc.classes[0].deadline_slack_ms;
    fw.serve.seed = util::derive_seed(7070, "cli/fleet/worker/" + std::to_string(w));
    specs.push_back(std::move(fw));
  }
  serve::Fleet fleet(std::move(specs), fc);

  serve_sim::FleetLoadConfig load;
  load.requests = 20000;
  const double capacity = static_cast<double>(workers) * 8.0 / curve(8);
  load.mean_interarrival_ms = 1.0 / (1.5 * capacity);  // ~1.5x fleet capacity
  load.tenants = {{1, 0, 2.0}, {2, 1, 1.0}};
  const auto arrivals = serve_sim::generate_fleet_arrivals(load, fc.classes, {});
  const serve_sim::FleetReport rep = serve_sim::run_fleet_open_loop(fleet, arrivals);

  std::printf("fleet demo: %zu worker%s, %lld requests at ~1.5x capacity\n", workers,
              workers == 1 ? "" : "s", static_cast<long long>(rep.submitted));
  std::printf("  served %lld (%.1f req/s), shed %lld (%.1f%%, explicit rejections), "
              "missed %lld\n",
              static_cast<long long>(rep.served), rep.throughput_rps,
              static_cast<long long>(rep.shed), 100.0 * rep.shed_rate,
              static_cast<long long>(rep.missed));
  std::printf("  p50 %.3f ms, p99 %.3f ms, mean batch %.2f, steals %lld\n",
              rep.p50_response_ms, rep.p99_response_ms, rep.mean_batch,
              static_cast<long long>(rep.steals));
  for (const auto& [tenant, tr] : rep.tenants)
    std::printf("  tenant %u (%s): submitted %lld, shed %.1f%%, miss %.2f%%, "
                "p99 %.3f ms (budget %.3f ms)\n",
                tenant, fc.classes[tr.slo].name.c_str(),
                static_cast<long long>(tr.submitted), 100.0 * tr.shed_rate,
                100.0 * tr.miss_rate, tr.p99_response_ms,
                fc.classes[tr.slo].p99_budget_ms);
  if (!kill_spec.empty()) {
    std::printf("  failover: %lld declared (--kill-worker %s), %lld orphans re-queued, "
                "%lld shed at re-admission\n",
                static_cast<long long>(rep.failovers), kill_spec.c_str(),
                static_cast<long long>(rep.requeued),
                static_cast<long long>(rep.drain_shed));
    for (std::size_t w = 0; w < fleet.workers(); ++w)
      std::printf("  %s: %s, %lld batches\n", fleet.worker_name(w).c_str(),
                  serve::replica_state_name(fleet.worker_state(w)),
                  static_cast<long long>(fleet.worker(w).stats().batches));
  }
  return 0;
}

// Cascade demo behind --cascade: calibrate the (shallow, deep, thr) cascade
// on each requested net and print its operating point next to the two static
// cuts it is built from, plus the dominance verdict the golden tests gate on.
int run_cascade_demo(const netcut::core::CascadeSpec& spec,
                     const std::vector<netcut::zoo::NetId>& nets,
                     netcut::core::TrnEvaluator& evaluator, netcut::core::LatencyLab& lab) {
  using namespace netcut;

  const std::vector<zoo::NetId> targets =
      nets.empty() ? std::vector<zoo::NetId>{zoo::NetId::kMobileNetV1_025} : nets;
  core::CascadeExplorer explorer(evaluator, lab);
  std::printf("cascade: shallow ordinal %d, deep ordinal %d, escalate below margin %.3g\n\n",
              spec.shallow, spec.deep, spec.threshold);
  for (zoo::NetId net : targets) {
    const std::vector<int>& blocks = lab.blockwise(net);
    if (spec.deep >= static_cast<int>(blocks.size()))
      throw std::invalid_argument("--cascade: deep ordinal " + std::to_string(spec.deep) +
                                  " out of range for " + zoo::net_name(net) + " (has " +
                                  std::to_string(blocks.size()) + " blockwise cuts)");
    const int shallow_cut = blocks[static_cast<std::size_t>(spec.shallow)];
    const int deep_cut = blocks[static_cast<std::size_t>(spec.deep)];
    const std::vector<core::TradeoffPoint> singles =
        explorer.single_cut_points(net, {shallow_cut, deep_cut});
    const core::CascadeOperatingPoint point =
        explorer.operating_point(net, shallow_cut, deep_cut, spec.threshold);

    util::Table table({"operating point", "latency_ms", "accuracy", "p_escalate"});
    table.add_row({singles[0].name, util::Table::num(singles[0].latency_ms, 4),
                   util::Table::num(singles[0].accuracy, 4), "-"});
    table.add_row({singles[1].name, util::Table::num(singles[1].latency_ms, 4),
                   util::Table::num(singles[1].accuracy, 4), "-"});
    table.add_row({point.name, util::Table::num(point.latency_ms, 4),
                   util::Table::num(point.accuracy, 4),
                   util::Table::num(point.p_escalate, 3)});
    std::printf("%s\n%s", zoo::net_name(net).c_str(), table.to_string().c_str());
    const bool improves = core::cascade_improves({point}, core::pareto_frontier(singles));
    std::printf("cascade %s the static-cut front\n\n",
                improves ? "dominates a point of" : "does not dominate");
  }
  return 0;
}

int run_cli(int argc, char** argv) {
  using namespace netcut;

  double deadline = 0.9;
  std::string estimator_name = "profiler";
  std::vector<zoo::NetId> nets;
  bool fast = false;
  std::string cache_dir;
  std::size_t workers = 0;      // 0 = no fleet demo
  std::string kill_worker;      // "W@S" crash spec for the fleet demo
  core::CascadeSpec cascade;    // disabled unless --cascade parses enabled

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--deadline" && i + 1 < argc) {
      deadline = std::atof(argv[++i]);
    } else if (arg == "--estimator" && i + 1 < argc) {
      estimator_name = argv[++i];
    } else if (arg == "--fast") {
      fast = true;
    } else if (arg == "--cache-dir" && i + 1 < argc) {
      cache_dir = argv[++i];
    } else if (arg == "--backend" && i + 1 < argc) {
      // Force the kernel backend for this run, overriding both the default
      // and NETCUT_BACKEND. parse_backend throws std::invalid_argument on an
      // unknown name, which the top-level handler maps to exit 2.
      tensor::set_backend(tensor::parse_backend(argv[++i]));
    } else if (arg == "--workers" && i + 1 < argc) {
      // Full-consumption strtol: "8x" or "abc" must not silently parse as a
      // prefix. Anything that is not an integer >= 1 is operator error.
      char* end = nullptr;
      const long n = std::strtol(argv[++i], &end, 10);
      if (end == argv[i] || *end != '\0' || n < 1) {
        std::fprintf(stderr, "netcut_cli: --workers needs an integer >= 1, got '%s'\n",
                     argv[i]);
        return kExitBadArgs;
      }
      workers = static_cast<std::size_t>(n);
    } else if (arg == "--kill-worker" && i + 1 < argc) {
      // Validate eagerly: the value is the W@S body of a crash= clause, so
      // the fault-spec parser is the single source of truth for its shape.
      kill_worker = argv[++i];
      try {
        (void)hw::parse_fault_spec("crash=" + kill_worker);
      } catch (const std::invalid_argument&) {
        std::fprintf(stderr,
                     "netcut_cli: --kill-worker needs W@S (replica index @ dispatch "
                     "attempt), got '%s'\n",
                     kill_worker.c_str());
        return kExitBadArgs;
      }
    } else if (arg == "--cascade" && i + 1 < argc) {
      // Validate eagerly, like --kill-worker: the spec grammar lives in one
      // place (core::parse_cascade_spec) and a malformed spec must fail
      // before the expensive evaluator pipeline spins up.
      try {
        cascade = core::parse_cascade_spec(argv[++i]);
      } catch (const std::invalid_argument& e) {
        std::fprintf(stderr, "netcut_cli: %s\n", e.what());
        return kExitBadArgs;
      }
    } else if (arg == "--net" && i + 1 < argc) {
      const std::string want = argv[++i];
      bool found = false;
      for (auto id : zoo::all_nets())
        if (zoo::net_name(id) == want) {
          nets.push_back(id);
          found = true;
        }
      if (!found) {
        std::printf("unknown network '%s'\n", want.c_str());
        usage();
        return kExitBadArgs;
      }
    } else {
      usage();
      return arg == "--help" ? 0 : kExitBadArgs;
    }
  }

  if (!kill_worker.empty() && workers == 0) {
    std::fprintf(stderr, "netcut_cli: --kill-worker only applies to the fleet demo; "
                         "pass --workers N as well\n");
    return kExitBadArgs;
  }
  if (workers > 0) return run_fleet_demo(workers, kill_worker);

  // Redirect both experiment caches under --cache-dir, creating it eagerly
  // so an unusable location fails fast (exit 3) before any expensive work.
  std::string accuracy_cache = "netcut_accuracy_cache.csv";
  std::string weight_cache = "netcut_weights";
  if (!cache_dir.empty()) {
    std::filesystem::create_directories(cache_dir);
    accuracy_cache = (std::filesystem::path(cache_dir) / accuracy_cache).string();
    weight_cache = (std::filesystem::path(cache_dir) / weight_cache).string();
  }

  core::LatencyLab lab;
  data::HandsConfig data_cfg;
  data_cfg.resolution = 24;
  data_cfg.train_count = fast ? 120 : 300;
  data_cfg.test_count = fast ? 60 : 120;
  const data::HandsDataset dataset(data_cfg);

  core::EvalConfig eval_cfg;
  eval_cfg.resolution = 24;
  eval_cfg.epochs = fast ? 8 : 16;
  eval_cfg.cache_path = accuracy_cache;
  eval_cfg.weight_cache_dir = weight_cache;
  if (fast) {
    eval_cfg.pretrained.source_images = 100;
    eval_cfg.pretrained.epochs = 8;
  }
  core::TrnEvaluator evaluator(dataset, eval_cfg);

  if (cascade.enabled) return run_cascade_demo(cascade, nets, evaluator, lab);

  std::unique_ptr<core::LatencyEstimator> estimator;
  core::AnalyticalEstimator analytical(lab);
  core::ProfilerEstimator profiler(lab);
  if (estimator_name == "analytical") {
    // Fit on the blockwise latency sweep (the paper's 20% train split).
    std::vector<core::LatencySample> train;
    std::size_t i = 0;
    for (zoo::NetId net : zoo::all_nets())
      for (int cut : lab.blockwise(net)) {
        if (i++ % 5 != 2) continue;
        core::LatencySample s;
        s.base = net;
        s.cut_node = cut;
        s.features = core::compute_trn_features(lab, net, cut);
        s.measured_ms = lab.measured_ms(net, cut);
        train.push_back(std::move(s));
      }
    analytical.fit(train);
  } else if (estimator_name != "profiler") {
    usage();
    return kExitBadArgs;
  }
  core::LatencyEstimator& est =
      estimator_name == "analytical" ? static_cast<core::LatencyEstimator&>(analytical)
                                     : static_cast<core::LatencyEstimator&>(profiler);

  std::printf("NetCut: deadline %.3f ms, estimator %s\n\n", deadline, est.name().c_str());
  core::NetCut netcut(lab, evaluator);
  core::NetCutConfig cfg;
  cfg.deadline_ms = deadline;
  cfg.networks = nets;
  const core::NetCutResult result = netcut.run(est, cfg);

  if (result.proposals.empty()) {
    std::printf("no network can meet %.3f ms on this device\n", deadline);
    return kExitNoFeasible;
  }

  util::Table table({"proposal", "est_ms", "measured_ms", "accuracy", "top1", "GPU-h"});
  for (const core::NetCutProposal& p : result.proposals)
    table.add_row({p.trn.trn_name, util::Table::num(p.estimated_ms, 3),
                   util::Table::num(p.trn.latency_ms, 3), util::Table::num(p.trn.accuracy, 4),
                   util::Table::num(p.trn.top1, 3), util::Table::num(p.trn.train_hours, 2)});
  std::printf("%s\n", table.to_string().c_str());
  const auto& w = result.winner();
  std::printf("selected: %s  (%.3f ms measured, accuracy %.4f)\n", w.trn.trn_name.c_str(),
              w.trn.latency_ms, w.trn.accuracy);
  std::printf("retrained %d networks, %.2f GPU-hours on the training-server model\n",
              result.networks_retrained, result.exploration_hours);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // One-line diagnostics with distinct exit codes instead of a raw abort —
  // a fleet script wrapping this binary can tell operator error (2) from a
  // full disk (3) from a genuine pipeline failure (4).
  try {
    return run_cli(argc, argv);
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "netcut_cli: invalid argument: %s\n", e.what());
    return kExitBadArgs;
  } catch (const std::filesystem::filesystem_error& e) {
    std::fprintf(stderr, "netcut_cli: filesystem error: %s\n", e.what());
    return kExitFilesystem;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "netcut_cli: error: %s\n", e.what());
    return kExitRuntime;
  }
}
