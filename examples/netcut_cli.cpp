// Command-line front end for NetCut: pick a deadline and an estimator, get
// the deadline-meeting TRN per network and the final selection.
//
//   netcut_cli [--deadline MS] [--estimator profiler|analytical]
//              [--net NAME ...] [--fast] [--cache-dir DIR]
//
// Example:
//   ./build/examples/netcut_cli --deadline 0.6 --estimator analytical
//
// Exit codes: 0 success, 1 no network meets the deadline, 2 bad arguments,
// 3 filesystem failure (unreadable/unwritable caches), 4 runtime failure.
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/estimator.hpp"
#include "core/netcut.hpp"
#include "tensor/backend.hpp"
#include "util/table.hpp"

namespace {

constexpr int kExitNoFeasible = 1;
constexpr int kExitBadArgs = 2;
constexpr int kExitFilesystem = 3;
constexpr int kExitRuntime = 4;

void usage() {
  std::printf(
      "usage: netcut_cli [--deadline MS] [--estimator profiler|analytical]\n"
      "                  [--net NAME ...] [--fast] [--cache-dir DIR]\n"
      "                  [--backend scalar|simd]\n"
      "nets: ");
  for (auto id : netcut::zoo::all_nets())
    std::printf("%s ", netcut::zoo::net_name(id).c_str());
  std::printf("\n");
}

int run_cli(int argc, char** argv) {
  using namespace netcut;

  double deadline = 0.9;
  std::string estimator_name = "profiler";
  std::vector<zoo::NetId> nets;
  bool fast = false;
  std::string cache_dir;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--deadline" && i + 1 < argc) {
      deadline = std::atof(argv[++i]);
    } else if (arg == "--estimator" && i + 1 < argc) {
      estimator_name = argv[++i];
    } else if (arg == "--fast") {
      fast = true;
    } else if (arg == "--cache-dir" && i + 1 < argc) {
      cache_dir = argv[++i];
    } else if (arg == "--backend" && i + 1 < argc) {
      // Force the kernel backend for this run, overriding both the default
      // and NETCUT_BACKEND. parse_backend throws std::invalid_argument on an
      // unknown name, which the top-level handler maps to exit 2.
      tensor::set_backend(tensor::parse_backend(argv[++i]));
    } else if (arg == "--net" && i + 1 < argc) {
      const std::string want = argv[++i];
      bool found = false;
      for (auto id : zoo::all_nets())
        if (zoo::net_name(id) == want) {
          nets.push_back(id);
          found = true;
        }
      if (!found) {
        std::printf("unknown network '%s'\n", want.c_str());
        usage();
        return kExitBadArgs;
      }
    } else {
      usage();
      return arg == "--help" ? 0 : kExitBadArgs;
    }
  }

  // Redirect both experiment caches under --cache-dir, creating it eagerly
  // so an unusable location fails fast (exit 3) before any expensive work.
  std::string accuracy_cache = "netcut_accuracy_cache.csv";
  std::string weight_cache = "netcut_weights";
  if (!cache_dir.empty()) {
    std::filesystem::create_directories(cache_dir);
    accuracy_cache = (std::filesystem::path(cache_dir) / accuracy_cache).string();
    weight_cache = (std::filesystem::path(cache_dir) / weight_cache).string();
  }

  core::LatencyLab lab;
  data::HandsConfig data_cfg;
  data_cfg.resolution = 24;
  data_cfg.train_count = fast ? 120 : 300;
  data_cfg.test_count = fast ? 60 : 120;
  const data::HandsDataset dataset(data_cfg);

  core::EvalConfig eval_cfg;
  eval_cfg.resolution = 24;
  eval_cfg.epochs = fast ? 8 : 16;
  eval_cfg.cache_path = accuracy_cache;
  eval_cfg.weight_cache_dir = weight_cache;
  if (fast) {
    eval_cfg.pretrained.source_images = 100;
    eval_cfg.pretrained.epochs = 8;
  }
  core::TrnEvaluator evaluator(dataset, eval_cfg);

  std::unique_ptr<core::LatencyEstimator> estimator;
  core::AnalyticalEstimator analytical(lab);
  core::ProfilerEstimator profiler(lab);
  if (estimator_name == "analytical") {
    // Fit on the blockwise latency sweep (the paper's 20% train split).
    std::vector<core::LatencySample> train;
    std::size_t i = 0;
    for (zoo::NetId net : zoo::all_nets())
      for (int cut : lab.blockwise(net)) {
        if (i++ % 5 != 2) continue;
        core::LatencySample s;
        s.base = net;
        s.cut_node = cut;
        s.features = core::compute_trn_features(lab, net, cut);
        s.measured_ms = lab.measured_ms(net, cut);
        train.push_back(std::move(s));
      }
    analytical.fit(train);
  } else if (estimator_name != "profiler") {
    usage();
    return kExitBadArgs;
  }
  core::LatencyEstimator& est =
      estimator_name == "analytical" ? static_cast<core::LatencyEstimator&>(analytical)
                                     : static_cast<core::LatencyEstimator&>(profiler);

  std::printf("NetCut: deadline %.3f ms, estimator %s\n\n", deadline, est.name().c_str());
  core::NetCut netcut(lab, evaluator);
  core::NetCutConfig cfg;
  cfg.deadline_ms = deadline;
  cfg.networks = nets;
  const core::NetCutResult result = netcut.run(est, cfg);

  if (result.proposals.empty()) {
    std::printf("no network can meet %.3f ms on this device\n", deadline);
    return kExitNoFeasible;
  }

  util::Table table({"proposal", "est_ms", "measured_ms", "accuracy", "top1", "GPU-h"});
  for (const core::NetCutProposal& p : result.proposals)
    table.add_row({p.trn.trn_name, util::Table::num(p.estimated_ms, 3),
                   util::Table::num(p.trn.latency_ms, 3), util::Table::num(p.trn.accuracy, 4),
                   util::Table::num(p.trn.top1, 3), util::Table::num(p.trn.train_hours, 2)});
  std::printf("%s\n", table.to_string().c_str());
  const auto& w = result.winner();
  std::printf("selected: %s  (%.3f ms measured, accuracy %.4f)\n", w.trn.trn_name.c_str(),
              w.trn.latency_ms, w.trn.accuracy);
  std::printf("retrained %d networks, %.2f GPU-hours on the training-server model\n",
              result.networks_retrained, result.exploration_hours);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // One-line diagnostics with distinct exit codes instead of a raw abort —
  // a fleet script wrapping this binary can tell operator error (2) from a
  // full disk (3) from a genuine pipeline failure (4).
  try {
    return run_cli(argc, argv);
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "netcut_cli: invalid argument: %s\n", e.what());
    return kExitBadArgs;
  } catch (const std::filesystem::filesystem_error& e) {
    std::fprintf(stderr, "netcut_cli: filesystem error: %s\n", e.what());
    return kExitFilesystem;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "netcut_cli: error: %s\n", e.what());
    return kExitRuntime;
  }
}
