// The paper's motivating application end to end (Section III, Fig 2):
// a robotic prosthetic hand whose control loop fuses an EMG classifier with
// a visual grasp classifier under a hard 0.9 ms per-frame budget.
//
// The example compares the deployed control loop with three visual
// classifiers: the most accurate network overall (misses the deadline —
// frames get dropped), the best off-the-shelf network under the deadline,
// and a NetCut-selected TRN (meets the deadline with higher accuracy).
#include <cstdio>

#include "app/control_loop.hpp"
#include "core/netcut.hpp"

int main() {
  using namespace netcut;

  core::LatencyLab lab;

  data::HandsConfig data_cfg;
  data_cfg.resolution = 24;
  data_cfg.train_count = 200;
  data_cfg.test_count = 80;
  const data::HandsDataset dataset(data_cfg);

  core::EvalConfig eval_cfg;
  eval_cfg.resolution = 24;
  eval_cfg.epochs = 10;
  eval_cfg.cache_path.clear();
  core::TrnEvaluator evaluator(dataset, eval_cfg);

  // EMG path: synthetic Myo-band stream + trained MLP classifier.
  const data::EmgGenerator emg_gen(data::EmgConfig{});
  app::MlpConfig emg_mlp;
  emg_mlp.epochs = 20;
  const app::EmgClassifier emg(emg_gen, 200, emg_mlp);
  std::printf("EMG classifier angular similarity: %.4f\n",
              emg.test_accuracy(emg_gen, 100, 31));

  // Candidate visual classifiers.
  struct Setup {
    const char* label;
    zoo::NetId base;
    int cut;
  };
  std::vector<Setup> setups;

  // (a) most accurate but over-deadline: full ResNet-50.
  setups.push_back({"ResNet50 (full, misses deadline)", zoo::NetId::kResNet50,
                    lab.full_cut(zoo::NetId::kResNet50)});
  // (b) best off-the-shelf under the deadline: MobileNetV1-0.5.
  setups.push_back({"MobileNetV1-0.50 (off-the-shelf)", zoo::NetId::kMobileNetV1_050,
                    lab.full_cut(zoo::NetId::kMobileNetV1_050)});
  // (c) NetCut's pick for ResNet-50 at 0.9 ms.
  core::ProfilerEstimator estimator(lab);
  core::NetCut netcut(lab, evaluator);
  core::NetCutConfig nc_cfg;
  nc_cfg.deadline_ms = 0.9;
  nc_cfg.networks = {zoo::NetId::kResNet50};
  const core::NetCutResult nc = netcut.run(estimator, nc_cfg);
  if (nc.selected >= 0)
    setups.push_back({"NetCut TRN of ResNet50", zoo::NetId::kResNet50,
                      nc.winner().trn.cut_node});

  app::MlpConfig head_cfg;
  head_cfg.epochs = 12;
  app::ControlLoopConfig loop_cfg;
  loop_cfg.episodes = 30;

  std::printf("\n%-36s %10s %8s %8s %8s %8s\n", "visual classifier", "latency", "miss%",
              "frames", "top1", "ang-sim");
  for (const Setup& s : setups) {
    const double latency = lab.measured_ms(s.base, s.cut);
    const app::VisualClassifier vision(s.base, s.cut, dataset, head_cfg,
                                       data::PretrainedConfig{});
    app::ControlLoop loop(vision, emg, emg_gen, latency, loop_cfg);
    const app::ControlLoopReport r = loop.run(dataset);
    std::printf("%-36s %7.3f ms %7.1f%% %8.1f %8.3f %8.4f\n", s.label, latency,
                r.deadline_miss_rate * 100.0, r.mean_frames_used, r.top1_accuracy,
                r.mean_angular_similarity);
  }

  std::printf(
      "\nReading: the over-deadline network loses every visual frame and the loop\n"
      "degrades to EMG-only; the NetCut TRN keeps the frames *and* carries more\n"
      "accuracy than the small off-the-shelf network that also fits the budget.\n");
  return 0;
}
