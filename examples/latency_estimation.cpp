// Walkthrough of both latency estimators (Section V-B): profile one
// network, inspect the per-layer table and the event-overhead artifact,
// estimate a TRN with the ratio formula, then train the analytical SVR and
// compare all three (profiler / SVR / linear) against measurement.
#include <cstdio>

#include "core/estimator.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main() {
  using namespace netcut;

  core::LatencyLab lab;
  const zoo::NetId net = zoo::NetId::kMobileNetV2_100;

  // --- Profiler-based estimation (V-B1) ---
  const hw::LatencyTable& table = lab.profile(net);
  std::printf("profiled %s: %zu kernels, end-to-end %.3f ms, layer-sum %.3f ms\n",
              table.network.c_str(), table.layers.size(), table.end_to_end_ms,
              table.layer_sum_ms());
  std::printf("event-timing overhead inflates the sum by %.1f%% -> the ratio formula\n\n",
              (table.layer_sum_ms() / table.end_to_end_ms - 1.0) * 100.0);

  std::printf("slowest five kernels:\n");
  std::vector<hw::ProfiledLayer> sorted = table.layers;
  std::sort(sorted.begin(), sorted.end(),
            [](const auto& a, const auto& b) { return a.latency_ms > b.latency_ms; });
  for (int i = 0; i < 5; ++i)
    std::printf("  %-40s %.4f ms\n", sorted[static_cast<std::size_t>(i)].name.c_str(),
                sorted[static_cast<std::size_t>(i)].latency_ms);

  core::ProfilerEstimator prof(lab);

  // --- Analytical estimation (V-B2) ---
  std::vector<core::LatencySample> samples;
  for (zoo::NetId n : zoo::all_nets())
    for (int cut : lab.blockwise(n)) {
      core::LatencySample s;
      s.base = n;
      s.cut_node = cut;
      s.features = core::compute_trn_features(lab, n, cut);
      s.measured_ms = lab.measured_ms(n, cut);
      samples.push_back(std::move(s));
    }
  std::vector<core::LatencySample> train, test;
  for (std::size_t i = 0; i < samples.size(); ++i)
    (i % 5 == 2 ? train : test).push_back(samples[i]);

  core::AnalyticalEstimator svr(lab);
  svr.fit(train);
  core::LinearEstimator lin(lab);
  lin.fit(train);
  std::printf("\nanalytical SVR trained on %zu TRN rows (features: base latency, GFLOPs,\n"
              "Mparams, layer count, filter sizes)\n\n",
              train.size());

  util::Table out({"trn", "measured", "profiler", "svr", "linear"});
  const auto cuts = lab.blockwise(net);
  for (std::size_t i = 0; i < cuts.size(); i += 3) {
    const int cut = cuts[i];
    out.add_row({lab.name(net, cut), util::Table::num(lab.measured_ms(net, cut), 3),
                 util::Table::num(prof.estimate_ms(net, cut), 3),
                 util::Table::num(svr.estimate_ms(net, cut), 3),
                 util::Table::num(lin.estimate_ms(net, cut), 3)});
  }
  std::printf("%s\n", out.to_string().c_str());

  std::vector<double> truth, pe, ae, le;
  for (const core::LatencySample& s : test) {
    truth.push_back(s.measured_ms);
    pe.push_back(prof.estimate_ms(s.base, s.cut_node));
    ae.push_back(svr.predict(s.features));
    le.push_back(lin.predict(s.features));
  }
  std::printf("held-out mean relative error: profiler %.2f%%, SVR %.2f%%, linear %.2f%%\n",
              util::mean_relative_error(pe, truth) * 100.0,
              util::mean_relative_error(ae, truth) * 100.0,
              util::mean_relative_error(le, truth) * 100.0);
  return 0;
}
